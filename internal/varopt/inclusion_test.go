package varopt

import (
	"testing"

	"structaware/internal/xmath"
)

// TestStreamPairwiseInclusionBound verifies condition (iii) of the VarOpt
// definition for the stream reservoir: joint inclusion probabilities are
// bounded by the product of the marginals (negative correlation), for a set
// of fixed pairs, estimated over many runs.
func TestStreamPairwiseInclusionBound(t *testing.T) {
	ws := []float64{9, 7, 5, 3, 3, 2, 2, 1, 1, 1, 1, 1}
	const (
		k      = 4
		trials = 50000
	)
	n := len(ws)
	r := xmath.NewRand(99)
	marg := make([]float64, n)
	joint := make([][]float64, n)
	for i := range joint {
		joint[i] = make([]float64, n)
	}
	for trial := 0; trial < trials; trial++ {
		st, err := NewStream(k, r)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range ws {
			if err := st.Process(i, w); err != nil {
				t.Fatal(err)
			}
		}
		sm, _ := st.Result()
		in := make([]bool, n)
		for _, i := range sm.Indices {
			in[i] = true
		}
		for i := 0; i < n; i++ {
			if in[i] {
				marg[i]++
			}
			for j := i + 1; j < n; j++ {
				if in[i] && in[j] {
					joint[i][j]++
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi, pj := marg[i]/trials, marg[j]/trials
			pij := joint[i][j] / trials
			if pij > pi*pj+0.01 {
				t.Fatalf("pair (%d,%d): joint %v exceeds product %v", i, j, pij, pi*pj)
			}
		}
	}
}

// TestStreamFixedSizeThroughoutPrefix checks the reservoir is exactly
// min(k, seen) at every point of the stream, not only at the end.
func TestStreamFixedSizeThroughoutPrefix(t *testing.T) {
	r := xmath.NewRand(100)
	st, err := NewStream(7, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := st.Process(i, 1+10*r.Float64()); err != nil {
			t.Fatal(err)
		}
		sm, _ := st.Result()
		want := i + 1
		if want > 7 {
			want = 7
		}
		if sm.Size() != want {
			t.Fatalf("after %d items: size %d want %d", i+1, sm.Size(), want)
		}
	}
}
