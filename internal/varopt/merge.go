package varopt

import (
	"fmt"

	"structaware/internal/ipps"
	"structaware/internal/paggr"
	"structaware/internal/xmath"
)

// Shard is one mergeable VarOpt sample: the items it retained (with their
// original weights, Index being a caller-global identifier) and the IPPS
// threshold it was drawn with. Shards are produced independently over
// disjoint slices of a population — by worker goroutines, by separate
// machines, or by separate time windows — and combined with MergeAll.
type Shard struct {
	Items []StreamItem
	Tau   float64
}

// Merge merges two VarOpt samples over disjoint populations into a single
// sample of size (at most) s. See MergeAll for semantics and preconditions.
func Merge(a, b Shard, s int, r xmath.Rand) (*Sample, []StreamItem, error) {
	return MergeAll([]Shard{a, b}, s, r)
}

// MergeAll merges VarOpt samples drawn over pairwise-disjoint populations
// into a single sample of size exactly min(s, union size), with one IPPS
// threshold Tau valid for every retained item.
//
// The merge re-samples the union of the shards' Horvitz–Thompson adjusted
// weights a_i = max(w_i, Tau_j): a fresh threshold τ' solving
// Σ min(1, a_i/τ') = s is computed over the union and the candidate
// probabilities are closed by randomly-ordered pair aggregation. An item's
// overall inclusion probability is then min(1, w_i/Tau_j)·min(1, a_i/τ') and
// its HT adjusted weight max(w_i, Tau_j, τ'), so subset-sum estimates from
// the merged sample stay unbiased.
//
// Returning a single threshold requires τ' to dominate every shard
// threshold. That holds whenever each shard with Tau_j > 0 was drawn with
// target size ≥ s (a full shard contributes ≥ s expected samples at its own
// threshold, so the union's threshold can only be higher); violating the
// precondition is reported as an error rather than silently biasing
// estimates.
//
// The returned items carry the original weights and are sorted ascending by
// Index (parallel to Sample.Indices).
func MergeAll(shards []Shard, s int, r xmath.Rand) (*Sample, []StreamItem, error) {
	adj, tau, keepAll, err := MergeThreshold(shards, s)
	if err != nil {
		return nil, nil, err
	}
	items := make([]StreamItem, 0, len(adj))
	for _, sh := range shards {
		items = append(items, sh.Items...)
	}
	if keepAll {
		return packMerged(items, tau), items, nil
	}
	p := ipps.Probabilities(adj, tau)
	ipps.NormalizeToInteger(p, 1e-6)
	order := xmath.Perm(r, len(p))
	left := paggr.AggregateSequence(p, order, r)
	paggr.ResolveLeftover(p, left, r)
	kept := make([]StreamItem, 0, s)
	for _, i := range paggr.SampleIndices(p) {
		kept = append(kept, items[i])
	}
	return packMerged(kept, tau), kept, nil
}

// MergeThreshold computes the single IPPS threshold for merging the shards'
// samples down to target size s. It returns the union's HT adjusted weights
// a_i = max(w_i, Tau_j) in shard-then-item order and the merged threshold;
// keepAll reports that the union already fits in s, in which case the
// returned threshold is the max shard threshold and every item is kept
// verbatim. It enforces the dominance precondition documented on MergeAll:
// a merged threshold below a shard threshold is an error, and an ULP-level
// tie snaps to the shard threshold (the exact one).
func MergeThreshold(shards []Shard, s int) (adj []float64, tau float64, keepAll bool, err error) {
	if s <= 0 {
		return nil, 0, false, ipps.ErrBadSize
	}
	var maxTau float64
	for _, sh := range shards {
		if sh.Tau > maxTau {
			maxTau = sh.Tau
		}
		for _, it := range sh.Items {
			adj = append(adj, ipps.AdjustedWeight(it.Weight, sh.Tau))
		}
	}
	if len(adj) == 0 {
		return nil, 0, false, ErrEmpty
	}
	tau, err = ipps.Threshold(adj, s)
	if err != nil {
		return nil, 0, false, err
	}
	if tau == 0 {
		// The union fits in s. With the size precondition honored, a shard
		// threshold can be positive here only when that shard contributed
		// the entire union, so max-ing the shard thresholds stays per-item
		// exact — enforce it rather than silently inflating the adjusted
		// weights of items from lower-threshold shards.
		if maxTau > 0 {
			for _, sh := range shards {
				if len(sh.Items) > 0 && sh.Tau != maxTau {
					return nil, 0, false, fmt.Errorf(
						"varopt: union fits in %d but shard thresholds differ (%v vs %v); draw shards with target size >= %d",
						s, sh.Tau, maxTau, s)
				}
			}
		}
		return adj, maxTau, true, nil
	}
	if tau < maxTau*(1-1e-9) {
		return nil, 0, false, fmt.Errorf(
			"varopt: merged threshold %v below shard threshold %v; draw shards with target size >= %d",
			tau, maxTau, s)
	}
	if tau < maxTau {
		tau = maxTau
	}
	return adj, tau, false, nil
}

// packMerged sorts items ascending by Index in place and assembles the
// merged Sample over them.
func packMerged(items []StreamItem, tau float64) *Sample {
	sortByIndex(items)
	out := &Sample{Tau: tau, Indices: make([]int, len(items))}
	for i, it := range items {
		out.Indices[i] = it.Index
	}
	return out
}
