package varopt

import (
	"math"
	"testing"

	"structaware/internal/ipps"
	"structaware/internal/xmath"
)

func heavyTailedWeights(n int, seed uint64) []float64 {
	r := xmath.NewRand(seed)
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = math.Exp(5 * r.Float64())
	}
	return ws
}

func TestBatchExactSize(t *testing.T) {
	r := xmath.NewRand(1)
	for trial := 0; trial < 50; trial++ {
		n := 10 + r.Intn(300)
		s := 1 + r.Intn(n-1)
		ws := heavyTailedWeights(n, uint64(trial+1))
		sm, err := Batch(ws, s, r)
		if err != nil {
			t.Fatal(err)
		}
		if sm.Size() != s {
			t.Fatalf("trial %d: size %d want %d", trial, sm.Size(), s)
		}
	}
}

func TestBatchUnbiasedTotal(t *testing.T) {
	// The HT estimate of the full population total must be unbiased.
	ws := heavyTailedWeights(60, 7)
	total := xmath.Sum(ws)
	r := xmath.NewRand(2)
	const trials = 3000
	var acc float64
	for k := 0; k < trials; k++ {
		sm, err := Batch(ws, 10, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range sm.Indices {
			acc += sm.AdjustedWeight(ws[i])
		}
	}
	mean := acc / trials
	if math.Abs(mean-total) > 0.03*total {
		t.Fatalf("estimated total %v want %v", mean, total)
	}
}

func TestBatchPerItemInclusionMatchesIPPS(t *testing.T) {
	ws := []float64{8, 6, 4, 2, 2, 1, 1}
	s := 3
	tau, _ := ipps.Threshold(ws, s)
	p := ipps.Probabilities(ws, tau)
	r := xmath.NewRand(3)
	const trials = 40000
	counts := make([]int, len(ws))
	for k := 0; k < trials; k++ {
		sm, err := Batch(ws, s, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range sm.Indices {
			counts[i]++
		}
	}
	for i := range ws {
		got := float64(counts[i]) / trials
		if math.Abs(got-p[i]) > 0.01 {
			t.Fatalf("item %d inclusion %v want %v", i, got, p[i])
		}
	}
}

func TestPoissonExpectedSize(t *testing.T) {
	ws := heavyTailedWeights(500, 11)
	r := xmath.NewRand(4)
	const trials = 300
	s := 50
	var acc float64
	for k := 0; k < trials; k++ {
		sm, err := Poisson(ws, s, r)
		if err != nil {
			t.Fatal(err)
		}
		acc += float64(sm.Size())
	}
	mean := acc / trials
	if math.Abs(mean-float64(s)) > 3 {
		t.Fatalf("mean Poisson size %v want ~%d", mean, s)
	}
}

func TestBatchVarianceNoWorseThanPoisson(t *testing.T) {
	// VarOpt subset-sum estimates must have variance at most that of Poisson
	// IPPS on the same subset (here: a fixed arbitrary subset).
	ws := heavyTailedWeights(80, 21)
	subset := map[int]bool{}
	r := xmath.NewRand(5)
	for i := 0; i < 40; i++ {
		subset[r.Intn(len(ws))] = true
	}
	est := func(sm *Sample) float64 {
		var v float64
		for _, i := range sm.Indices {
			if subset[i] {
				v += sm.AdjustedWeight(ws[i])
			}
		}
		return v
	}
	const trials = 4000
	s := 12
	var vo, po []float64
	for k := 0; k < trials; k++ {
		a, err := Batch(ws, s, r)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Poisson(ws, s, r)
		if err != nil {
			t.Fatal(err)
		}
		vo = append(vo, est(a))
		po = append(po, est(b))
	}
	vVar, pVar := xmath.Variance(vo), xmath.Variance(po)
	// Allow sampling noise: VarOpt must not exceed Poisson by more than 15%.
	if vVar > 1.15*pVar {
		t.Fatalf("VarOpt variance %v exceeds Poisson %v", vVar, pVar)
	}
}

func TestStreamExactSizeAndValidity(t *testing.T) {
	r := xmath.NewRand(6)
	ws := heavyTailedWeights(5000, 31)
	st, err := NewStream(100, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if err := st.Process(i, w); err != nil {
			t.Fatal(err)
		}
	}
	sm, items := st.Result()
	if sm.Size() != 100 || len(items) != 100 {
		t.Fatalf("size %d want 100", sm.Size())
	}
	seen := map[int]bool{}
	for k, it := range items {
		if it.Index != sm.Indices[k] {
			t.Fatal("items and indices must be parallel")
		}
		if seen[it.Index] {
			t.Fatalf("duplicate index %d", it.Index)
		}
		seen[it.Index] = true
		if it.Weight != ws[it.Index] {
			t.Fatalf("original weight lost: %v vs %v", it.Weight, ws[it.Index])
		}
	}
	// Adjusted weights: heavy items keep w, light items get τ >= w.
	for _, it := range items {
		aw := sm.AdjustedWeight(it.Weight)
		if aw < it.Weight-1e-9 {
			t.Fatalf("adjusted weight below original: %v < %v", aw, it.Weight)
		}
	}
}

func TestStreamUnbiasedTotal(t *testing.T) {
	ws := heavyTailedWeights(400, 41)
	total := xmath.Sum(ws)
	r := xmath.NewRand(7)
	const trials = 2000
	var acc float64
	for k := 0; k < trials; k++ {
		st, _ := NewStream(20, r)
		for i, w := range ws {
			if err := st.Process(i, w); err != nil {
				t.Fatal(err)
			}
		}
		sm, items := st.Result()
		for _, it := range items {
			acc += sm.AdjustedWeight(it.Weight)
		}
	}
	mean := acc / trials
	if math.Abs(mean-total) > 0.03*total {
		t.Fatalf("stream estimated total %v want %v", mean, total)
	}
}

func TestStreamInclusionMatchesIPPS(t *testing.T) {
	// Over repeated runs, item inclusion frequencies must approach the batch
	// IPPS probabilities min(1, w/τ_s).
	ws := []float64{10, 7, 5, 3, 2, 2, 1, 1, 1, 1}
	s := 4
	tau, _ := ipps.Threshold(ws, s)
	p := ipps.Probabilities(ws, tau)
	r := xmath.NewRand(8)
	const trials = 40000
	counts := make([]int, len(ws))
	for k := 0; k < trials; k++ {
		st, _ := NewStream(s, r)
		for i, w := range ws {
			if err := st.Process(i, w); err != nil {
				t.Fatal(err)
			}
		}
		sm, _ := st.Result()
		for _, i := range sm.Indices {
			counts[i]++
		}
	}
	for i := range ws {
		got := float64(counts[i]) / trials
		if math.Abs(got-p[i]) > 0.012 {
			t.Fatalf("item %d inclusion %v want %v", i, got, p[i])
		}
	}
}

func TestStreamTauMatchesBatchThreshold(t *testing.T) {
	// After the full stream the reservoir threshold should be close to the
	// batch τ_s (they coincide in distribution; for a fixed stream the final
	// τ is a random variable concentrated near τ_s). We check the exact
	// uniform-weights case where τ is deterministic.
	r := xmath.NewRand(9)
	st, _ := NewStream(5, r)
	for i := 0; i < 50; i++ {
		if err := st.Process(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Uniform weights: τ_s = n/s = 10.
	if !xmath.AlmostEqual(st.Tau(), 10, 1e-9) {
		t.Fatalf("uniform-stream τ=%v want 10", st.Tau())
	}
}

func TestStreamFewerItemsThanCapacity(t *testing.T) {
	r := xmath.NewRand(10)
	st, _ := NewStream(10, r)
	for i := 0; i < 4; i++ {
		if err := st.Process(i, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	sm, items := st.Result()
	if sm.Size() != 4 || sm.Tau != 0 {
		t.Fatalf("undersized stream should keep everything exactly: size=%d τ=%v", sm.Size(), sm.Tau)
	}
	for _, it := range items {
		if sm.AdjustedWeight(it.Weight) != it.Weight {
			t.Fatal("τ=0 must keep exact weights")
		}
	}
}

func TestStreamRejectsBadWeights(t *testing.T) {
	st, _ := NewStream(2, xmath.NewRand(11))
	if err := st.Process(0, -5); err == nil {
		t.Fatal("negative weight must error")
	}
	if err := st.Process(0, math.NaN()); err == nil {
		t.Fatal("NaN weight must error")
	}
	if err := st.Process(0, 0); err != nil {
		t.Fatal("zero weight should be skipped silently")
	}
	if st.Seen() != 0 {
		t.Fatal("zero weight must not count as seen")
	}
}

func TestNewStreamRejectsBadCapacity(t *testing.T) {
	if _, err := NewStream(0, xmath.NewRand(1)); err == nil {
		t.Fatal("k=0 must error")
	}
}

func TestBatchEmptyPopulation(t *testing.T) {
	if _, err := Batch([]float64{0, 0}, 2, xmath.NewRand(1)); err == nil {
		t.Fatal("all-zero weights must error")
	}
}

func TestStreamSubsetUnbiased(t *testing.T) {
	// Subset-sum estimates from the stream reservoir are unbiased too.
	ws := heavyTailedWeights(300, 51)
	subTotal := 0.0
	subset := map[int]bool{}
	r := xmath.NewRand(12)
	for i := 0; i < 90; i++ {
		j := r.Intn(len(ws))
		if !subset[j] {
			subset[j] = true
			subTotal += ws[j]
		}
	}
	const trials = 3000
	var acc float64
	for k := 0; k < trials; k++ {
		st, _ := NewStream(25, r)
		for i, w := range ws {
			if err := st.Process(i, w); err != nil {
				t.Fatal(err)
			}
		}
		sm, items := st.Result()
		for _, it := range items {
			if subset[it.Index] {
				acc += sm.AdjustedWeight(it.Weight)
			}
		}
	}
	mean := acc / trials
	if math.Abs(mean-subTotal) > 0.05*subTotal {
		t.Fatalf("subset estimate %v want %v", mean, subTotal)
	}
}
