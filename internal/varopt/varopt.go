// Package varopt implements structure-oblivious IPPS sampling schemes:
// Poisson IPPS sampling, batch VarOpt sampling via randomly-ordered pair
// aggregation, and the classic one-pass stream VarOpt reservoir of Cohen,
// Duffield, Kaplan, Lund, Thorup (SODA 2009).
//
// These serve three roles in the reproduction:
//
//   - the "obliv" baseline of the paper's experiments (§6),
//   - pass 1 of the I/O-efficient two-pass construction (§5), and
//   - the reference distribution against which the structure-aware schemes'
//     VarOpt properties (fixed size s, unbiased HT estimates, variance no
//     worse than Poisson) are tested.
package varopt

import (
	"errors"
	"fmt"

	"structaware/internal/ipps"
	"structaware/internal/paggr"
	"structaware/internal/xmath"
	"structaware/internal/xsort"
)

// ErrEmpty is returned when sampling from an empty (or all-zero) population.
var ErrEmpty = errors.New("varopt: no items with positive weight")

// Sample is a weighted random sample with IPPS/HT semantics: item i, if
// included, has Horvitz–Thompson adjusted weight max(w_i, Tau). Tau == 0
// means the population was not larger than the sample size, so the "sample"
// is exact.
type Sample struct {
	// Indices of the sampled items in the caller's item order, ascending.
	Indices []int
	// Tau is the IPPS threshold the sample was drawn with.
	Tau float64
}

// AdjustedWeight returns the HT adjusted weight for a sampled item with
// original weight w.
func (s *Sample) AdjustedWeight(w float64) float64 {
	return ipps.AdjustedWeight(w, s.Tau)
}

// Size returns the number of sampled items.
func (s *Sample) Size() int { return len(s.Indices) }

// Poisson draws a Poisson IPPS sample with expected size s: each item is
// included independently with probability min(1, w_i/τ_s). The realized size
// is random (concentrated around s).
func Poisson(weights []float64, s int, r xmath.Rand) (*Sample, error) {
	tau, err := ipps.Threshold(weights, s)
	if err != nil {
		return nil, err
	}
	p := ipps.Probabilities(weights, tau)
	out := &Sample{Tau: tau}
	for i, pi := range p {
		if pi >= 1 || (pi > 0 && r.Float64() < pi) {
			out.Indices = append(out.Indices, i)
		}
	}
	if len(out.Indices) == 0 && len(weights) > 0 {
		// Possible but astronomically unlikely for reasonable s; retry once
		// deterministically by including the heaviest item so callers always
		// get a usable summary.
		best := 0
		for i, w := range weights {
			if w > weights[best] {
				best = i
			}
		}
		if weights[best] > 0 {
			out.Indices = append(out.Indices, best)
		} else {
			return nil, ErrEmpty
		}
	}
	return out, nil
}

// Batch draws a VarOpt sample of size exactly s (or the number of positive
// items, if smaller) by pair-aggregating the IPPS probability vector in
// uniformly random order. Random pair order makes the scheme structure
// oblivious; it is the "obliv" baseline of the paper's experiments.
func Batch(weights []float64, s int, r xmath.Rand) (*Sample, error) {
	tau, err := ipps.Threshold(weights, s)
	if err != nil {
		return nil, err
	}
	p := ipps.Probabilities(weights, tau)
	ipps.NormalizeToInteger(p, 1e-6)
	order := xmath.Perm(r, len(p))
	left := paggr.AggregateSequence(p, order, r)
	paggr.ResolveLeftover(p, left, r)
	out := &Sample{Indices: paggr.SampleIndices(p), Tau: tau}
	if len(out.Indices) == 0 {
		return nil, ErrEmpty
	}
	return out, nil
}

// StreamItem is an item held by the stream reservoir.
type StreamItem struct {
	// Index is the caller-assigned identifier (typically the position in the
	// input stream or dataset).
	Index int
	// Weight is the item's original weight.
	Weight float64
}

// Stream is the one-pass VarOpt_k reservoir. Feed items with Process; at any
// point the reservoir holds min(k, #items) items forming a VarOpt sample of
// the prefix. Amortized cost per item is O(log k).
//
// Internally the reservoir splits into "heavy" items (weight above the
// current threshold τ, kept with exact weights in a min-heap) and "light"
// items (HT adjusted weight exactly τ, mutually exchangeable). On each
// arrival past capacity the threshold rises to τ' solving
// Σ min(1, w/τ') = k over the k+1 candidates, and exactly one candidate is
// dropped with probability 1 - min(1, w/τ').
type Stream struct {
	k       int
	r       xmath.Rand
	heavy   itemHeap
	light   []StreamItem // adjusted weight τ each; original weights retained
	scratch []StreamItem // reusable demotion buffer (≤ k+1)
	tau     float64
	seen    int
}

// NewStream creates a stream VarOpt reservoir with capacity k. All internal
// buffers are pre-sized to the reservoir capacity, so steady-state Process
// calls never allocate.
func NewStream(k int, r xmath.Rand) (*Stream, error) {
	if k <= 0 {
		return nil, ipps.ErrBadSize
	}
	return &Stream{
		k:       k,
		r:       r,
		heavy:   make(itemHeap, 0, k+1),
		light:   make([]StreamItem, 0, k),
		scratch: make([]StreamItem, 0, k+1),
	}, nil
}

// Seen returns the number of positive-weight items processed so far.
func (st *Stream) Seen() int { return st.seen }

// Tau returns the current threshold (0 until the reservoir overflows).
func (st *Stream) Tau() float64 { return st.tau }

// Process consumes one item. Zero-weight items are ignored; negative or
// non-finite weights are rejected. Steady-state calls are allocation-free:
// the demotion buffer is reused and the heap and light pools are bounded by
// the capacity.
//
//sasvet:hotpath
func (st *Stream) Process(index int, w float64) error {
	if err := ipps.ValidateWeight(w); err != nil {
		return err
	}
	if w == 0 {
		return nil
	}
	st.seen++
	demoted := st.scratch[:0]
	if w < st.tau && len(st.heavy)+len(st.light) == st.k {
		// Small-item fast path: once the reservoir has overflowed (τ > 0 and
		// full), an arrival below τ can never be heavy — it is immediately a
		// small candidate. Skipping the heap round trip produces the exact
		// demotion sequence the heap path would (the new item is strictly
		// lighter than every heavy item, so it would be popped first) at O(1)
		// instead of O(log k).
		demoted = append(demoted, StreamItem{Index: index, Weight: w})
	} else {
		st.heavy.push(StreamItem{Index: index, Weight: w})
		if len(st.heavy)+len(st.light) <= st.k {
			return nil
		}
	}

	// Raise the threshold: demote heap minima into the small-candidate pool
	// until the heap minimum exceeds τ' = L/(t-1).
	t := len(st.light)
	L := float64(t) * st.tau
	for _, d := range demoted {
		L += d.Weight
		t++
	}
	for len(st.heavy) > 0 {
		top := st.heavy[0]
		if t >= 2 && top.Weight > L/float64(t-1) {
			break
		}
		st.heavy.pop()
		demoted = append(demoted, top)
		L += top.Weight
		t++
	}
	if t < 2 {
		//sasvet:ok invariant-violation path; allocating while failing loudly is fine
		return fmt.Errorf("varopt: internal error, %d small candidates", t)
	}
	tauNew := L / float64(t-1)

	// Drop exactly one candidate: explicit candidates (the demoted items)
	// with probability 1 - w/τ', otherwise a uniformly random old light item
	// (old light items all carry adjusted weight τ, hence equal drop odds).
	u := st.r.Float64()
	dropped := -1
	for di, it := range demoted {
		dp := 1 - it.Weight/tauNew
		if dp < 0 {
			dp = 0
		}
		if u < dp {
			dropped = di
			break
		}
		u -= dp
	}
	if dropped >= 0 {
		demoted = append(demoted[:dropped], demoted[dropped+1:]...)
	} else if len(st.light) > 0 {
		j := int(st.r.Uint64() % uint64(len(st.light)))
		st.light[j] = st.light[len(st.light)-1]
		st.light = st.light[:len(st.light)-1]
	} else {
		// Numerically the drop probabilities sum to 1; if rounding left us
		// here, drop the last demoted item (probability O(eps) event).
		demoted = demoted[:len(demoted)-1]
	}
	st.light = append(st.light, demoted...)
	st.scratch = demoted[:0] // keep the (possibly grown) buffer for reuse
	st.tau = tauNew
	if len(st.heavy)+len(st.light) != st.k {
		//sasvet:ok invariant-violation path; allocating while failing loudly is fine
		return fmt.Errorf("varopt: reservoir size %d want %d", len(st.heavy)+len(st.light), st.k)
	}
	return nil
}

// Len returns the number of items currently held by the reservoir.
func (st *Stream) Len() int { return len(st.heavy) + len(st.light) }

// Clone returns a deep copy of the reservoir that shares no mutable state
// with st: both can keep processing independently. The clone draws its
// randomness from r; passing a copy of the original's generator state makes
// the clone's future decisions identical to the original's (the snapshot
// determinism contract of core.Builder.Snapshot), while any other source
// simply yields an independent continuation of the same reservoir state.
func (st *Stream) Clone(r xmath.Rand) *Stream {
	cl := &Stream{
		k:       st.k,
		r:       r,
		heavy:   make(itemHeap, len(st.heavy), st.k+1),
		light:   make([]StreamItem, len(st.light), st.k),
		scratch: make([]StreamItem, 0, st.k+1),
		tau:     st.tau,
		seen:    st.seen,
	}
	copy(cl.heavy, st.heavy)
	copy(cl.light, st.light)
	return cl
}

// AppendItems appends the reservoir contents to dst (in internal, unsorted
// order) and returns it — the allocation-free counterpart of Result for
// callers that only need the retained items, e.g. the ingestion pipeline's
// coordinate compaction.
func (st *Stream) AppendItems(dst []StreamItem) []StreamItem {
	dst = append(dst, st.heavy...)
	return append(dst, st.light...)
}

// Result returns the reservoir contents as a Sample plus the items' original
// weights (parallel to Sample.Indices). The sample is a VarOpt_k sample of
// everything processed so far.
func (st *Stream) Result() (*Sample, []StreamItem) {
	items := make([]StreamItem, 0, len(st.heavy)+len(st.light))
	items = append(items, st.heavy...)
	items = append(items, st.light...)
	sortByIndex(items)
	out := &Sample{Tau: st.tau, Indices: make([]int, len(items))}
	for i, it := range items {
		out.Indices[i] = it.Index
	}
	return out, items
}

// itemHeap is a min-heap of StreamItems ordered by weight.
type itemHeap []StreamItem

func (h *itemHeap) push(it StreamItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].Weight <= (*h)[i].Weight {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *itemHeap) pop() StreamItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l].Weight < (*h)[small].Weight {
			small = l
		}
		if r < n && (*h)[r].Weight < (*h)[small].Weight {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// sortByIndex sorts items ascending by Index (LSD radix; indices are
// distinct, so stability is moot, but the order is deterministic).
func sortByIndex(items []StreamItem) {
	n := len(items)
	keys := make([]uint64, n)
	for i, it := range items {
		keys[i] = uint64(it.Index)
	}
	tmpKeys := make([]uint64, n)
	tmpVals := make([]StreamItem, n)
	var counts [256]int
	xsort.SortPairs(keys, items, tmpKeys, tmpVals, &counts)
}
