package varopt

import (
	"math"
	"testing"

	"structaware/internal/xmath"
)

// feedStream pushes n deterministic heavy-tailed weights into st, starting
// at index base.
func feedStream(t *testing.T, st *Stream, base, n int, seed uint64) {
	t.Helper()
	r := xmath.NewRand(seed)
	for i := 0; i < n; i++ {
		if err := st.Process(base+i, math.Exp(5*r.Float64())); err != nil {
			t.Fatal(err)
		}
	}
}

// sameResult compares two reservoir results item by item (bitwise weights).
func sameResult(t *testing.T, got, want *Stream, label string) {
	t.Helper()
	gs, gi := got.Result()
	ws, wi := want.Result()
	if math.Float64bits(gs.Tau) != math.Float64bits(ws.Tau) {
		t.Fatalf("%s: tau %v vs %v", label, gs.Tau, ws.Tau)
	}
	if len(gi) != len(wi) {
		t.Fatalf("%s: %d items vs %d", label, len(gi), len(wi))
	}
	for k := range gi {
		if gi[k].Index != wi[k].Index || math.Float64bits(gi[k].Weight) != math.Float64bits(wi[k].Weight) {
			t.Fatalf("%s: item %d: %+v vs %+v", label, k, gi[k], wi[k])
		}
	}
}

// TestStreamCloneIsDeepAndDeterministic: a clone taken mid-stream (with a
// copy of the generator state) is frozen at the clone point until fed, and
// feeding both copies the same suffix keeps them bit-identical — the
// invariant core.Builder.Snapshot is built on.
func TestStreamCloneIsDeepAndDeterministic(t *testing.T) {
	const k, half = 60, 500
	r := xmath.NewRand(7)
	st, err := NewStream(k, r)
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, st, 0, half, 11)

	// Reference for the clone point: a fresh stream fed the same prefix.
	atHalf, err := NewStream(k, xmath.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, atHalf, 0, half, 11)

	cl := st.Clone(r.Clone())
	sameResult(t, cl, atHalf, "clone at half")
	if cl.Seen() != st.Seen() || cl.Tau() != st.Tau() || cl.Len() != st.Len() {
		t.Fatalf("clone state (%d,%v,%d) vs (%d,%v,%d)",
			cl.Seen(), cl.Tau(), cl.Len(), st.Seen(), st.Tau(), st.Len())
	}

	// Advancing the original must not disturb the clone...
	feedStream(t, st, half, half, 13)
	sameResult(t, cl, atHalf, "clone after original advanced")

	// ...and the clone, fed the same suffix, lands bit-identical to the
	// original (its generator was a copy of the original's state).
	feedStream(t, cl, half, half, 13)
	sameResult(t, cl, st, "clone fed same suffix")
}
