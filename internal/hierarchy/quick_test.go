package hierarchy

import (
	"testing"
	"testing/quick"

	"structaware/internal/xmath"
)

// TestNewQuickNeverPanics drives New with arbitrary parent vectors: it must
// either return a valid tree (with consistent invariants) or an error —
// never panic, never return an inconsistent tree.
func TestNewQuickNeverPanics(t *testing.T) {
	f := func(raw []int8) bool {
		parents := make([]int32, len(raw))
		for i, v := range raw {
			parents[i] = int32(v)
		}
		tree, err := New(parents)
		if err != nil {
			return true
		}
		// Valid tree: check linearization invariants.
		seen := make([]bool, tree.NumLeaves())
		for v := int32(0); int(v) < tree.NumNodes(); v++ {
			if tree.IsLeaf(v) {
				pos, ok := tree.LeafPosition(v)
				if !ok || pos >= uint64(tree.NumLeaves()) || seen[pos] {
					return false
				}
				seen[pos] = true
				if tree.LeafAt(pos) != v {
					return false
				}
			}
			lo, hi, ok := tree.LeafInterval(v)
			if !ok {
				return false // every node must dominate at least one leaf
			}
			if p := tree.Parent(v); p != -1 {
				plo, phi, _ := tree.LeafInterval(p)
				if lo < plo || hi > phi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLCAQuickAgainstAncestorSets cross-checks LCA with an ancestor-set
// reference on random trees.
func TestLCAQuickAgainstAncestorSets(t *testing.T) {
	r := xmath.NewRand(77)
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		for i := 0; i < 3+r.Intn(100); i++ {
			b.AddChild(int32(r.Intn(b.NumNodes())))
		}
		tree, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			x := int32(r.Intn(tree.NumNodes()))
			y := int32(r.Intn(tree.NumNodes()))
			got := tree.LCA(x, y)
			// Reference: deepest common node of the two ancestor chains.
			anc := map[int32]bool{}
			for _, v := range tree.Ancestors(x) {
				anc[v] = true
			}
			var want int32 = -1
			for _, v := range tree.Ancestors(y) {
				if anc[v] {
					want = v
					break
				}
			}
			if got != want {
				t.Fatalf("LCA(%d,%d)=%d want %d", x, y, got, want)
			}
		}
	}
}
