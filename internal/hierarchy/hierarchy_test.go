package hierarchy

import (
	"testing"

	"structaware/internal/xmath"
)

// buildPaperTree builds the hierarchy of Figure 1 of the paper: 10 leaves
// under a three-level tree. Returns the tree and the leaf ids in leaf order
// 1..10 (as in the figure).
//
//	root
//	 ├── A (leaves 1..4 under two sub-nodes: A1={1,2}, A2={3,4})
//	 ├── B (leaf 5, and B1={6,7})
//	 └── C (leaves {8,9}, leaf 10)  -- shaped to give 10 leaves total
func buildPaperTree(t *testing.T) (*Tree, []int32) {
	b := NewBuilder()
	a := b.AddChild(0)
	bb := b.AddChild(0)
	c := b.AddChild(0)
	a1 := b.AddChild(a)
	a2 := b.AddChild(a)
	l1 := b.AddChild(a1)
	l2 := b.AddChild(a1)
	l3 := b.AddChild(a2)
	l4 := b.AddChild(a2)
	l5 := b.AddChild(bb)
	b1 := b.AddChild(bb)
	l6 := b.AddChild(b1)
	l7 := b.AddChild(b1)
	c1 := b.AddChild(c)
	l8 := b.AddChild(c1)
	l9 := b.AddChild(c1)
	l10 := b.AddChild(c)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree, []int32{l1, l2, l3, l4, l5, l6, l7, l8, l9, l10}
}

func TestTreeBasics(t *testing.T) {
	tree, leaves := buildPaperTree(t)
	if tree.NumLeaves() != 10 {
		t.Fatalf("leaves %d want 10", tree.NumLeaves())
	}
	if tree.NumNodes() != 18 {
		t.Fatalf("nodes %d want 18", tree.NumNodes())
	}
	for i, l := range leaves {
		if !tree.IsLeaf(l) {
			t.Fatalf("leaf %d not a leaf", l)
		}
		pos, ok := tree.LeafPosition(l)
		if !ok || pos != uint64(i) {
			t.Fatalf("leaf %d position %d want %d", l, pos, i)
		}
		if tree.LeafAt(pos) != l {
			t.Fatal("LeafAt inverse broken")
		}
	}
}

func TestLeafIntervalsAreDFSContiguous(t *testing.T) {
	tree, _ := buildPaperTree(t)
	// Every internal node's interval must equal the concatenation of its
	// children's intervals, and the root covers everything.
	lo, hi, ok := tree.LeafInterval(tree.Root())
	if !ok || lo != 0 || hi != uint64(tree.NumLeaves()-1) {
		t.Fatalf("root interval [%d,%d]", lo, hi)
	}
	var walk func(v int32)
	walk = func(v int32) {
		kids := tree.Children(v)
		if len(kids) == 0 {
			return
		}
		vlo, vhi, _ := tree.LeafInterval(v)
		expect := vlo
		for _, c := range kids {
			clo, chi, ok := tree.LeafInterval(c)
			if !ok {
				t.Fatalf("node %d has no leaves", c)
			}
			if clo != expect {
				t.Fatalf("child %d interval starts at %d want %d", c, clo, expect)
			}
			expect = chi + 1
			walk(c)
		}
		if expect != vhi+1 {
			t.Fatalf("node %d children cover to %d want %d", v, expect-1, vhi)
		}
	}
	walk(tree.Root())
}

func TestLCA(t *testing.T) {
	tree, leaves := buildPaperTree(t)
	// Leaves 1 and 2 share parent A1 (node id of leaves[0]'s parent).
	a1 := tree.Parent(leaves[0])
	if got := tree.LCA(leaves[0], leaves[1]); got != a1 {
		t.Fatalf("LCA(l1,l2)=%d want %d", got, a1)
	}
	// Leaves 1 and 3 share grandparent A.
	a := tree.Parent(a1)
	if got := tree.LCA(leaves[0], leaves[2]); got != a {
		t.Fatalf("LCA(l1,l3)=%d want %d", got, a)
	}
	// Leaves 1 and 10 only share the root.
	if got := tree.LCA(leaves[0], leaves[9]); got != tree.Root() {
		t.Fatalf("LCA(l1,l10)=%d want root", got)
	}
	if got := tree.LCA(leaves[4], leaves[4]); got != leaves[4] {
		t.Fatal("LCA of a node with itself is itself")
	}
}

func TestAncestors(t *testing.T) {
	tree, leaves := buildPaperTree(t)
	anc := tree.Ancestors(leaves[0])
	if anc[len(anc)-1] != tree.Root() {
		t.Fatal("ancestor chain must end at root")
	}
	if anc[0] != leaves[0] {
		t.Fatal("ancestor chain must start at the node")
	}
	for i := 0; i+1 < len(anc); i++ {
		if tree.Parent(anc[i]) != anc[i+1] {
			t.Fatal("ancestor chain not parent-linked")
		}
	}
}

func TestMalformedTrees(t *testing.T) {
	cases := []struct {
		name    string
		parents []int32
	}{
		{"empty", nil},
		{"no root", []int32{1, 0}},
		{"two roots", []int32{-1, -1}},
		{"self loop", []int32{-1, 1}},
		{"out of range", []int32{-1, 5}},
		{"cycle", []int32{-1, 2, 1}},
	}
	for _, c := range cases {
		if _, err := New(c.parents); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

func TestSingleNodeTree(t *testing.T) {
	tree, err := New([]int32{-1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() != 1 || !tree.IsLeaf(0) {
		t.Fatal("single node must be a leaf")
	}
	lo, hi, ok := tree.LeafInterval(0)
	if !ok || lo != 0 || hi != 0 {
		t.Fatal("single leaf interval must be [0,0]")
	}
}

func TestRandomTreesInvariants(t *testing.T) {
	r := xmath.NewRand(99)
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			b.AddChild(int32(r.Intn(b.NumNodes())))
		}
		tree, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		// Leaf positions are a bijection onto [0, numLeaves).
		seen := make([]bool, tree.NumLeaves())
		for v := int32(0); int(v) < tree.NumNodes(); v++ {
			if !tree.IsLeaf(v) {
				continue
			}
			pos, ok := tree.LeafPosition(v)
			if !ok || seen[pos] {
				t.Fatalf("bad leaf position for %d", v)
			}
			seen[pos] = true
		}
		// Node intervals nest: child interval within parent interval.
		for v := int32(0); int(v) < tree.NumNodes(); v++ {
			p := tree.Parent(v)
			if p == -1 {
				continue
			}
			vlo, vhi, ok1 := tree.LeafInterval(v)
			plo, phi, ok2 := tree.LeafInterval(p)
			if !ok1 || !ok2 || vlo < plo || vhi > phi {
				t.Fatalf("child interval [%d,%d] outside parent [%d,%d]", vlo, vhi, plo, phi)
			}
		}
		// LCA sanity on random pairs: LCA is an ancestor of both with
		// maximal depth among common ancestors.
		for k := 0; k < 20; k++ {
			a := int32(r.Intn(tree.NumNodes()))
			bNode := int32(r.Intn(tree.NumNodes()))
			l := tree.LCA(a, bNode)
			inAnc := func(x, anc int32) bool {
				for _, v := range tree.Ancestors(x) {
					if v == anc {
						return true
					}
				}
				return false
			}
			if !inAnc(a, l) || !inAnc(bNode, l) {
				t.Fatalf("LCA %d not common ancestor of %d,%d", l, a, bNode)
			}
		}
	}
}

func TestHeight(t *testing.T) {
	tree, _ := buildPaperTree(t)
	if tree.Height() != 3 {
		t.Fatalf("height %d want 3", tree.Height())
	}
}
