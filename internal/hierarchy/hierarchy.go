// Package hierarchy provides explicit rooted trees over key domains: the
// "hierarchy" structure of Cohen, Cormode, Duffield (VLDB 2011), §3. Keys
// live at the leaves; the ranges of interest are the leaf sets under internal
// nodes (IP prefix sets, trouble-code categories, geographic areas, ...).
//
// Trees are DFS-linearized once at construction: every node maps to a
// contiguous interval of leaf positions, so hierarchy ranges become intervals
// over linear coordinates (which is also how §5 of the paper recommends
// handling hierarchies in multi-dimensional and I/O-efficient settings).
package hierarchy

import (
	"errors"
	"fmt"
)

// ErrBadTree is returned for malformed parent vectors.
var ErrBadTree = errors.New("hierarchy: malformed tree")

// Tree is an explicit rooted tree. Nodes are numbered 0..n-1; the root is
// the unique node with parent -1. Leaves are nodes without children.
type Tree struct {
	parent   []int32
	children [][]int32
	depth    []int32
	root     int32
	// begin/end give each node's half-open interval [begin, end) of leaf
	// positions in the DFS linearization.
	begin []int32
	end   []int32
	// leafAt[pos] is the leaf occupying linearized position pos; leafPos is
	// its inverse (only defined for leaves).
	leafAt  []int32
	leafPos []int32
}

// New builds a Tree from a parent vector. parents[v] is the parent of node v
// or -1 for the root; exactly one root must exist and the structure must be
// acyclic and connected.
func New(parents []int32) (*Tree, error) {
	n := len(parents)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty", ErrBadTree)
	}
	t := &Tree{
		parent:   append([]int32(nil), parents...),
		children: make([][]int32, n),
		depth:    make([]int32, n),
		root:     -1,
		begin:    make([]int32, n),
		end:      make([]int32, n),
		leafPos:  make([]int32, n),
	}
	for v, p := range parents {
		switch {
		case p == -1:
			if t.root != -1 {
				return nil, fmt.Errorf("%w: multiple roots (%d and %d)", ErrBadTree, t.root, v)
			}
			t.root = int32(v)
		case p < 0 || int(p) >= n:
			return nil, fmt.Errorf("%w: parent of %d out of range: %d", ErrBadTree, v, p)
		case int(p) == v:
			return nil, fmt.Errorf("%w: self-loop at %d", ErrBadTree, v)
		default:
			t.children[p] = append(t.children[p], int32(v))
		}
	}
	if t.root == -1 {
		return nil, fmt.Errorf("%w: no root", ErrBadTree)
	}
	// Iterative DFS: assign depths, leaf positions, and node intervals.
	for i := range t.leafPos {
		t.leafPos[i] = -1
	}
	type frame struct {
		node  int32
		child int
	}
	visited := 0
	stack := []frame{{t.root, 0}}
	t.depth[t.root] = 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.node
		if f.child == 0 {
			visited++
			t.begin[v] = int32(len(t.leafAt))
			if len(t.children[v]) == 0 {
				t.leafPos[v] = int32(len(t.leafAt))
				t.leafAt = append(t.leafAt, v)
			}
		}
		if f.child < len(t.children[v]) {
			c := t.children[v][f.child]
			f.child++
			t.depth[c] = t.depth[v] + 1
			if len(stack) > n {
				return nil, fmt.Errorf("%w: cycle detected", ErrBadTree)
			}
			stack = append(stack, frame{c, 0})
			continue
		}
		t.end[v] = int32(len(t.leafAt))
		stack = stack[:len(stack)-1]
	}
	if visited != n {
		return nil, fmt.Errorf("%w: %d of %d nodes unreachable from root", ErrBadTree, n-visited, n)
	}
	return t, nil
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return len(t.parent) }

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return len(t.leafAt) }

// Root returns the root node.
func (t *Tree) Root() int32 { return t.root }

// Parent returns the parent of v (-1 for the root).
func (t *Tree) Parent(v int32) int32 { return t.parent[v] }

// Children returns the children of v (shared slice; do not mutate).
func (t *Tree) Children(v int32) []int32 { return t.children[v] }

// Depth returns the depth of v (root = 0).
func (t *Tree) Depth(v int32) int32 { return t.depth[v] }

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int32) bool { return len(t.children[v]) == 0 }

// LeafInterval returns the inclusive interval [lo, hi] of linearized leaf
// positions under node v. For a leaf it is its own position twice. The
// second return is false when v has no leaves below it (possible only in
// degenerate trees with childless internal chains — by construction every
// node here has at least one leaf).
func (t *Tree) LeafInterval(v int32) (lo, hi uint64, ok bool) {
	if t.begin[v] >= t.end[v] {
		return 0, 0, false
	}
	return uint64(t.begin[v]), uint64(t.end[v] - 1), true
}

// LeafPosition returns the linearized position of leaf v; ok is false if v
// is not a leaf.
func (t *Tree) LeafPosition(v int32) (uint64, bool) {
	p := t.leafPos[v]
	if p < 0 {
		return 0, false
	}
	return uint64(p), true
}

// LeafAt returns the leaf at linearized position pos.
func (t *Tree) LeafAt(pos uint64) int32 { return t.leafAt[pos] }

// LCA returns the lowest common ancestor of a and b.
func (t *Tree) LCA(a, b int32) int32 {
	for t.depth[a] > t.depth[b] {
		a = t.parent[a]
	}
	for t.depth[b] > t.depth[a] {
		b = t.parent[b]
	}
	for a != b {
		a = t.parent[a]
		b = t.parent[b]
	}
	return a
}

// Ancestors returns the path from v to the root, inclusive.
func (t *Tree) Ancestors(v int32) []int32 {
	var out []int32
	for v != -1 {
		out = append(out, v)
		v = t.parent[v]
	}
	return out
}

// InternalNodes returns all non-leaf nodes (the range set R of the
// hierarchy structure).
func (t *Tree) InternalNodes() []int32 {
	var out []int32
	for v := int32(0); int(v) < len(t.parent); v++ {
		if !t.IsLeaf(v) {
			out = append(out, v)
		}
	}
	return out
}

// Height returns the maximum depth over all nodes.
func (t *Tree) Height() int32 {
	var h int32
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// Builder incrementally constructs trees: convenient for tests and for the
// synthetic workload generators.
type Builder struct {
	parents []int32
}

// NewBuilder returns a Builder with a root node already created (node 0).
func NewBuilder() *Builder {
	return &Builder{parents: []int32{-1}}
}

// AddChild creates a new node under parent and returns its id.
func (b *Builder) AddChild(parent int32) int32 {
	id := int32(len(b.parents))
	b.parents = append(b.parents, parent)
	return id
}

// NumNodes returns the number of nodes created so far.
func (b *Builder) NumNodes() int { return len(b.parents) }

// Build validates and returns the tree.
func (b *Builder) Build() (*Tree, error) {
	return New(b.parents)
}
