package ingest

import (
	"errors"
	"math"
	"testing"

	"structaware/internal/xmath"
)

// feed pushes n deterministic 2-D keys (index i gets coordinates derived
// from i) into g, starting the weight sequence at seed.
func feed(t *testing.T, g *Ingester, n int, seed uint64) {
	t.Helper()
	r := xmath.NewRand(seed)
	pt := make([]uint64, 2)
	for i := 0; i < n; i++ {
		pt[0], pt[1] = r.Uint64()%1024, r.Uint64()%1024
		if err := g.Push(pt, math.Exp(4*r.Float64())); err != nil {
			t.Fatal(err)
		}
	}
}

// sameGuide finalizes both ingesters and compares reservoir and retained
// coordinates bit for bit.
func sameGuide(t *testing.T, got, want *Ingester, label string) {
	t.Helper()
	gi, gt := got.Guide()
	wi, wt := want.Guide()
	if math.Float64bits(gt) != math.Float64bits(wt) || len(gi) != len(wi) {
		t.Fatalf("%s: tau/len %v/%d vs %v/%d", label, gt, len(gi), wt, len(wi))
	}
	for k := range gi {
		if gi[k] != wi[k] {
			t.Fatalf("%s: item %d: %+v vs %+v", label, k, gi[k], wi[k])
		}
		gp, gok := got.Point(gi[k].Index)
		wp, wok := want.Point(wi[k].Index)
		if !gok || !wok {
			t.Fatalf("%s: item %d: coordinates lost (%v/%v)", label, k, gok, wok)
		}
		for d := range gp {
			if gp[d] != wp[d] {
				t.Fatalf("%s: item %d axis %d: %d vs %d", label, k, d, gp[d], wp[d])
			}
		}
	}
}

// TestSnapshotDoesNotConsume: a snapshot taken mid-stream finalizes to
// exactly the state a fresh ingester fed the same prefix would, the
// original keeps ingesting unaffected, and its final Guide equals a fresh
// ingester fed the whole stream. Stream length (4000 keys into a capacity
// 150 reservoir) forces several arena compactions on both sides of the
// snapshot point.
func TestSnapshotDoesNotConsume(t *testing.T) {
	const capacity, half = 150, 2000
	cfg := Config{Capacity: capacity, Dims: 2, ThresholdSize: 50}
	r := xmath.NewRand(3)
	g, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, g, half, 21)

	snap, err := g.Snapshot(r.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if tau, ok := snap.Tau(); !ok {
		t.Fatalf("snapshot lost the threshold tracker (tau %v)", tau)
	}

	// The original keeps accepting pushes after the snapshot was finalized.
	feed(t, g, half, 22)

	prefix, err := New(cfg, xmath.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, prefix, half, 21)
	sameGuide(t, snap, prefix, "snapshot vs fresh prefix ingester")

	full, err := New(cfg, xmath.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, full, half, 21)
	feed(t, full, half, 22)
	sameGuide(t, g, full, "original vs fresh full-stream ingester")
}

// TestSnapshotAfterGuideFails: once the reservoir has been handed off there
// is nothing consistent to copy.
func TestSnapshotAfterGuideFails(t *testing.T) {
	g, err := New(Config{Capacity: 10, Dims: 1}, xmath.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Push([]uint64{0}, 1); err != nil {
		t.Fatal(err)
	}
	g.Guide()
	if _, err := g.Snapshot(xmath.NewRand(2)); !errors.Is(err, ErrFinalized) {
		t.Fatalf("snapshot after Guide: %v, want ErrFinalized", err)
	}
}
