package ingest

import (
	"testing"

	"structaware/internal/xmath"
)

// batchFixture generates a columnar stream with mixed zero weights.
func batchFixture(n int) (cols [][]uint64, ws []float64) {
	r := xmath.NewRand(21)
	cols = [][]uint64{make([]uint64, n), make([]uint64, n)}
	ws = make([]float64, n)
	for i := 0; i < n; i++ {
		cols[0][i] = r.Uint64() % 1024
		cols[1][i] = r.Uint64() % 1024
		if i%11 != 0 {
			ws[i] = 1 + 30*r.Float64()
		}
	}
	return cols, ws
}

// TestPushBatchMatchesPush: a columnar batch must be byte-equivalent to the
// same keys pushed one at a time — same reservoir, same threshold, same
// retained coordinates (the batch path is a fast path, not a variant).
func TestPushBatchMatchesPush(t *testing.T) {
	const n, capacity = 3000, 64
	cols, ws := batchFixture(n)
	one, err := New(Config{Capacity: capacity, Dims: 2, ThresholdSize: 16}, xmath.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]uint64, 2)
	for i := 0; i < n; i++ {
		pt[0], pt[1] = cols[0][i], cols[1][i]
		if err := one.Push(pt, ws[i]); err != nil {
			t.Fatal(err)
		}
	}
	bat, err := New(Config{Capacity: capacity, Dims: 2, ThresholdSize: 16}, xmath.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	// Split the batch at an arbitrary boundary to exercise batch resumption.
	if err := bat.PushBatch([][]uint64{cols[0][:1234], cols[1][:1234]}, ws[:1234]); err != nil {
		t.Fatal(err)
	}
	if err := bat.PushBatch([][]uint64{cols[0][1234:], cols[1][1234:]}, ws[1234:]); err != nil {
		t.Fatal(err)
	}

	itemsOne, tauOne := one.Guide()
	itemsBat, tauBat := bat.Guide()
	if tauOne != tauBat {
		t.Fatalf("tau0 %v vs %v", tauOne, tauBat)
	}
	to, okO := one.Tau()
	tb, okB := bat.Tau()
	if to != tb || okO != okB {
		t.Fatalf("tau_s %v/%v vs %v/%v", to, okO, tb, okB)
	}
	if len(itemsOne) != len(itemsBat) {
		t.Fatalf("reservoir sizes %d vs %d", len(itemsOne), len(itemsBat))
	}
	for k := range itemsOne {
		if itemsOne[k] != itemsBat[k] {
			t.Fatalf("item %d: %+v vs %+v", k, itemsOne[k], itemsBat[k])
		}
		a, okA := one.Point(itemsOne[k].Index)
		b, okB := bat.Point(itemsBat[k].Index)
		if !okA || !okB || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("item %d coordinates: %v(%v) vs %v(%v)", k, a, okA, b, okB)
		}
	}
}

// TestPushWeightsMatchesPush: the weight-only batch must match scalar pushes.
func TestPushWeightsMatchesPush(t *testing.T) {
	const n, capacity = 3000, 64
	_, ws := batchFixture(n)
	one, err := New(Config{Capacity: capacity, ThresholdSize: 16}, xmath.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if err := one.Push(nil, w); err != nil {
			t.Fatal(err)
		}
	}
	bat, err := New(Config{Capacity: capacity, ThresholdSize: 16}, xmath.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := bat.PushWeights(ws); err != nil {
		t.Fatal(err)
	}
	itemsOne, tauOne := one.Guide()
	itemsBat, tauBat := bat.Guide()
	if tauOne != tauBat || len(itemsOne) != len(itemsBat) {
		t.Fatalf("tau0 %v/%v sizes %d/%d", tauOne, tauBat, len(itemsOne), len(itemsBat))
	}
	for k := range itemsOne {
		if itemsOne[k] != itemsBat[k] {
			t.Fatalf("item %d: %+v vs %+v", k, itemsOne[k], itemsBat[k])
		}
	}
}

func TestPushWeightsRejectsCoordinateTracking(t *testing.T) {
	g, err := New(Config{Capacity: 4, Dims: 1}, xmath.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.PushWeights([]float64{1}); err == nil {
		t.Fatal("PushWeights on a coordinate-tracking ingester must error")
	}
}

func TestBatchErrors(t *testing.T) {
	g, err := New(Config{Capacity: 4, Dims: 2}, xmath.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.PushBatch([][]uint64{{1}}, []float64{1}); err == nil {
		t.Fatal("wrong column count must error")
	}
	if err := g.PushBatch([][]uint64{{1}, {2, 3}}, []float64{1}); err == nil {
		t.Fatal("ragged columns must error")
	}
	g.Guide()
	if err := g.PushBatch([][]uint64{{1}, {2}}, []float64{1}); err != ErrFinalized {
		t.Fatalf("batch after Guide: %v want ErrFinalized", err)
	}
	if err := g.PushWeights(nil); err != ErrFinalized {
		t.Fatalf("weights after Guide: %v want ErrFinalized", err)
	}
}

// TestIngesterPushZeroAllocSteadyState: the coordinate-tracking per-key path
// (slot arena + reservoir + compaction) must be allocation-free once warm.
func TestIngesterPushZeroAllocSteadyState(t *testing.T) {
	const capacity = 128
	g, err := New(Config{Capacity: capacity, Dims: 2}, xmath.NewRand(2))
	if err != nil {
		t.Fatal(err)
	}
	r := xmath.NewRand(3)
	pt := make([]uint64, 2)
	idx := 0
	push := func() {
		pt[0], pt[1] = r.Uint64()%512, r.Uint64()%512
		if err := g.Push(pt, 1+10*r.Float64()); err != nil {
			t.Fatal(err)
		}
		idx++
	}
	// Warm past several compaction cycles so every buffer reaches its
	// steady-state capacity.
	for idx < 12*g.maxSlots() {
		push()
	}
	// Average over several compaction periods: compaction itself must also
	// be allocation-free, not just the common path.
	if allocs := testing.AllocsPerRun(8*g.maxSlots(), push); allocs != 0 {
		t.Fatalf("steady-state Push allocated %v times per call", allocs)
	}
}
