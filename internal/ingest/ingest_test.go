package ingest

import (
	"testing"

	"structaware/internal/ipps"
	"structaware/internal/xmath"
)

func TestSmallStreamKeptExactly(t *testing.T) {
	g, err := New(Config{Capacity: 100, Dims: 2}, xmath.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := g.Push([]uint64{uint64(i), uint64(2 * i)}, float64(i%5)); err != nil {
			t.Fatal(err)
		}
	}
	items, tau0 := g.Guide()
	if tau0 != 0 {
		t.Fatalf("tau0 %v want 0 (no overflow)", tau0)
	}
	// 8 of 40 rows have weight 0 (i%5 == 0) and never enter the reservoir.
	if len(items) != 32 || g.Seen() != 32 || g.Rows() != 40 {
		t.Fatalf("items %d seen %d rows %d", len(items), g.Seen(), g.Rows())
	}
	for _, it := range items {
		pt, ok := g.Point(it.Index)
		if !ok || pt[0] != uint64(it.Index) || pt[1] != uint64(2*it.Index) {
			t.Fatalf("coordinates lost for row %d: %v %v", it.Index, pt, ok)
		}
		if it.Weight != float64(it.Index%5) {
			t.Fatalf("row %d weight %v", it.Index, it.Weight)
		}
	}
	if err := g.Push([]uint64{1, 1}, 1); err != ErrFinalized {
		t.Fatalf("push after Guide: %v want ErrFinalized", err)
	}
}

func TestOverflowBoundsMemoryAndThreshold(t *testing.T) {
	const capacity, n = 64, 5000
	g, err := New(Config{Capacity: capacity, Dims: 1, ThresholdSize: 16}, xmath.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]float64, n)
	r := xmath.NewRand(8)
	for i := 0; i < n; i++ {
		ws[i] = 1 + 50*r.Float64()
		if err := g.Push([]uint64{uint64(i)}, ws[i]); err != nil {
			t.Fatal(err)
		}
		if g.live > g.maxSlots() {
			t.Fatalf("row %d: %d live coordinate slots, compaction failed", i, g.live)
		}
	}
	items, tau0 := g.Guide()
	if len(items) != capacity {
		t.Fatalf("reservoir %d want %d", len(items), capacity)
	}
	if tau0 <= 0 {
		t.Fatalf("tau0 %v want > 0 after overflow", tau0)
	}
	if g.live != capacity {
		t.Fatalf("%d coordinate slots live after Guide, want %d", g.live, capacity)
	}
	for _, it := range items {
		if pt, ok := g.Point(it.Index); !ok || pt[0] != uint64(it.Index) {
			t.Fatalf("coordinates lost for reservoir row %d", it.Index)
		}
	}
	// The tracked streaming threshold matches the batch solver.
	want, err := ipps.Threshold(ws, 16)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := g.Tau()
	if !ok || !xmath.AlmostEqual(got, want, 1e-9) {
		t.Fatalf("streaming tau %v (ok=%v) want %v", got, ok, want)
	}
}

func TestNoCoordinateTracking(t *testing.T) {
	g, err := New(Config{Capacity: 8}, xmath.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := g.Push(nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	items, tau0 := g.Guide()
	if len(items) != 8 || tau0 <= 0 {
		t.Fatalf("items %d tau0 %v", len(items), tau0)
	}
	if _, ok := g.Point(items[0].Index); ok {
		t.Fatal("Point must report absence when coordinates are not tracked")
	}
	if _, ok := g.Tau(); ok {
		t.Fatal("Tau must report absence when no threshold size was configured")
	}
}

func TestPushErrors(t *testing.T) {
	if _, err := New(Config{Capacity: 0}, xmath.NewRand(1)); err == nil {
		t.Fatal("capacity 0 must error")
	}
	g, err := New(Config{Capacity: 4, Dims: 2}, xmath.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Push([]uint64{1}, 1); err == nil {
		t.Fatal("wrong dims must error")
	}
	if err := g.Push([]uint64{1, 2}, -1); err == nil {
		t.Fatal("negative weight must error")
	}
	g2, err := New(Config{Capacity: 4}, xmath.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Push(nil, -1); err == nil {
		t.Fatal("negative weight must error without threshold tracking")
	}
}
