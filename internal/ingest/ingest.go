// Package ingest is the repository's single streaming ingestion pipeline:
// a bounded-memory front end that every construction path pushes weighted
// keys through, whether the keys come from an in-memory Dataset, a CSV
// stream, stdin, or a shard of a partitioned population.
//
// An Ingester combines the three things pass 1 of every construction needs:
//
//   - a stream VarOpt reservoir (internal/varopt) of fixed capacity that
//     retains a mergeable sample of everything pushed so far, with its own
//     IPPS threshold τ₀ (0 until the reservoir overflows);
//   - optionally, the retained items' coordinates, kept in a flat columnar
//     slot arena that is compacted in lockstep with the reservoir so memory
//     stays O(capacity) regardless of stream length; and
//   - optionally, the streaming IPPS threshold τ_s for a separate target
//     size (the paper's Algorithm 4), which the two-pass construction of §5
//     needs alongside its guide sample.
//
// The per-key path is allocation-free in steady state: coordinate slots are
// recycled through a free list, compaction reuses persistent radix-sort
// scratch, and weight validation is scalar. Columnar batches (PushBatch,
// PushWeights) avoid even the per-key point materialization, which is how
// the dataset-backed and batch-file paths feed the pipeline.
//
// Consumers: core.Builder (streaming public API), the two-pass constructions
// (guide-sample pass), and — via the dataset-backed fast path in
// internal/core and internal/engine — the serial and sharded builders.
package ingest

import (
	"errors"
	"fmt"
	"sort"

	"structaware/internal/ipps"
	"structaware/internal/varopt"
	"structaware/internal/xmath"
	"structaware/internal/xsort"
)

// ErrFinalized is returned when pushing into a result-extracted Ingester
// whose reservoir has been handed off.
var ErrFinalized = errors.New("ingest: ingester already finalized")

// errNoCoords rejects weight-only batches on a coordinate-tracking Ingester.
var errNoCoords = errors.New("ingest: coordinate-tracking ingester needs coordinates (use PushBatch)")

// Config configures an Ingester.
type Config struct {
	// Capacity is the reservoir size: the number of candidate keys retained.
	// Must be positive.
	Capacity int
	// Dims, when positive, makes the Ingester retain each reservoir item's
	// coordinates (copied on Push); Point then recovers them. Zero means
	// coordinates are not tracked (the caller can look items up by index,
	// e.g. in a Dataset).
	Dims int
	// ThresholdSize, when positive, additionally tracks the streaming IPPS
	// threshold τ_s for that target sample size over the full stream.
	ThresholdSize int
}

// Ingester is the streaming ingestion state. It is not safe for concurrent
// use; shard-parallel callers run one Ingester per shard.
type Ingester struct {
	stream *varopt.Stream
	thr    *ipps.StreamThreshold
	cap    int
	dims   int
	rows   int
	done   bool

	// Columnar coordinate retention (dims > 0 only). Slot s holds the
	// coordinates of one pushed key at coords[s*dims : (s+1)*dims] and its
	// row index in slotRows[s] (-1 when free). Slots are recycled through
	// freeSlots; when live slots reach maxSlots the non-reservoir ones are
	// swept back to the free list.
	slotRows  []int
	coords    []uint64
	freeSlots []int32
	live      int

	// Persistent compaction scratch: the reservoir snapshot and the sorted
	// kept-row list, plus the radix scratch both sorts share.
	itemsBuf []varopt.StreamItem
	keepBuf  []int
	sortScr  xsort.Scratch

	// Row directory over live slots, built by Guide for Point lookups.
	dirRows  []uint64
	dirSlots []int32
}

// New creates an Ingester. r drives the reservoir's sampling decisions.
func New(cfg Config, r xmath.Rand) (*Ingester, error) {
	if cfg.Capacity <= 0 {
		return nil, ipps.ErrBadSize
	}
	stream, err := varopt.NewStream(cfg.Capacity, r)
	if err != nil {
		return nil, err
	}
	g := &Ingester{stream: stream, cap: cfg.Capacity, dims: cfg.Dims}
	if cfg.ThresholdSize > 0 {
		if g.thr, err = ipps.NewStreamThreshold(cfg.ThresholdSize); err != nil {
			return nil, err
		}
	}
	if cfg.Dims > 0 {
		slots := g.maxSlots()
		g.slotRows = make([]int, 0, slots)
		g.coords = make([]uint64, 0, slots*cfg.Dims)
		g.freeSlots = make([]int32, 0, slots)
	}
	return g, nil
}

// maxSlots is the coordinate-arena size at which compaction runs: with a
// reservoir of cap keys live, a 4× arena leaves 3×cap pushes between
// sweeps, amortizing each sweep to O(1) work per key.
func (g *Ingester) maxSlots() int { return 4 * g.cap }

// Push consumes one weighted key. The row index assigned to the key is the
// number of prior Push calls, so dataset-backed callers pushing rows in
// order can use dataset positions as reservoir indices. pt is copied when
// coordinates are tracked and may be nil otherwise; zero-weight keys advance
// the row index but never enter the reservoir. Steady-state pushes do not
// allocate.
//
//sasvet:hotpath
func (g *Ingester) Push(pt []uint64, w float64) error {
	if g.done {
		return ErrFinalized
	}
	if g.dims > 0 && len(pt) != g.dims {
		//sasvet:ok rejection path; a malformed point never reaches the per-row loop
		return fmt.Errorf("ingest: point has %d dims, want %d", len(pt), g.dims)
	}
	if err := g.pushWeight(w); err != nil {
		return err
	}
	if w != 0 && g.dims > 0 {
		slot := g.takeSlot()
		copy(g.coords[slot*g.dims:(slot+1)*g.dims], pt)
	}
	return nil
}

// PushBatch consumes a columnar batch: cols[d][i] is key i's coordinate on
// axis d and weights[i] its weight, exactly as len(weights) Push calls but
// without materializing a point per key — the batch fast path of the
// dataset-backed and streaming builders.
//
//sasvet:hotpath
func (g *Ingester) PushBatch(cols [][]uint64, weights []float64) error {
	if g.done {
		return ErrFinalized
	}
	if g.dims > 0 && len(cols) != g.dims {
		//sasvet:ok rejection path; a malformed batch never reaches the per-row loop
		return fmt.Errorf("ingest: batch has %d columns, want %d", len(cols), g.dims)
	}
	for d := range cols {
		if len(cols[d]) != len(weights) {
			//sasvet:ok rejection path; a malformed batch never reaches the per-row loop
			return fmt.Errorf("ingest: column %d has %d rows for %d weights", d, len(cols[d]), len(weights))
		}
	}
	for i, w := range weights {
		if err := g.pushWeight(w); err != nil {
			return err
		}
		if w != 0 && g.dims > 0 {
			slot := g.takeSlot()
			base := slot * g.dims
			for d := range cols {
				g.coords[base+d] = cols[d][i]
			}
		}
	}
	return nil
}

// PushWeights consumes a batch of weight-only keys. It is only valid on an
// Ingester that does not track coordinates (Config.Dims == 0), e.g. the
// dataset-backed two-pass guide scan, where keys are recovered by row index.
//
//sasvet:hotpath
func (g *Ingester) PushWeights(weights []float64) error {
	if g.done {
		return ErrFinalized
	}
	if g.dims > 0 {
		return errNoCoords
	}
	for _, w := range weights {
		if err := g.pushWeight(w); err != nil {
			return err
		}
	}
	return nil
}

// pushWeight runs the weight through the threshold tracker and reservoir,
// assigning the next row index.
func (g *Ingester) pushWeight(w float64) error {
	index := g.rows
	g.rows++
	if g.thr != nil {
		if err := g.thr.Process(w); err != nil {
			return err
		}
	} else if err := ipps.ValidateWeight(w); err != nil {
		return err
	}
	if w == 0 {
		return nil
	}
	return g.stream.Process(index, w)
}

// takeSlot claims a coordinate slot for the row just pushed (g.rows-1),
// sweeping stale slots first when the arena is full.
func (g *Ingester) takeSlot() int {
	if g.live >= g.maxSlots() {
		g.compact()
	}
	var slot int
	if n := len(g.freeSlots); n > 0 {
		slot = int(g.freeSlots[n-1])
		g.freeSlots = g.freeSlots[:n-1]
	} else {
		slot = len(g.slotRows)
		g.slotRows = append(g.slotRows, 0)
		if need := (slot + 1) * g.dims; cap(g.coords) >= need {
			g.coords = g.coords[:need] // pre-sized by New: no allocation
		} else {
			g.coords = append(g.coords, make([]uint64, g.dims)...)
		}
	}
	g.slotRows[slot] = g.rows - 1
	g.live++
	return slot
}

// compact frees the slots of rows no longer held by the reservoir. All
// scratch is persistent, so steady-state compaction does not allocate.
func (g *Ingester) compact() {
	items := g.stream.AppendItems(g.itemsBuf[:0])
	g.itemsBuf = items[:0]
	keep := g.keepBuf[:0]
	for _, it := range items {
		keep = append(keep, it.Index)
	}
	xsort.Ints(keep, &g.sortScr)
	g.keepBuf = keep[:0]
	for s, row := range g.slotRows {
		if row < 0 || sortedContains(keep, row) {
			continue
		}
		g.slotRows[s] = -1
		g.freeSlots = append(g.freeSlots, int32(s))
		g.live--
	}
}

// sortedContains reports whether x occurs in the ascending slice a.
func sortedContains(a []int, x int) bool {
	i := sort.SearchInts(a, x)
	return i < len(a) && a[i] == x
}

// Snapshot returns a deep copy of the ingestion state — reservoir,
// coordinate arena, and streaming threshold — that shares no mutable state
// with g: the copy can be finalized with Guide while g keeps accepting
// pushes. r drives the copy's future sampling decisions; snapshot consumers
// finalize the copy immediately and never draw from it, but passing a clone
// of the original's generator keeps the two ingesters byte-equivalent under
// identical further pushes. Snapshotting a finalized Ingester is an error.
func (g *Ingester) Snapshot(r xmath.Rand) (*Ingester, error) {
	if g.done {
		return nil, ErrFinalized
	}
	cl := &Ingester{
		stream: g.stream.Clone(r),
		cap:    g.cap,
		dims:   g.dims,
		rows:   g.rows,
		live:   g.live,
	}
	if g.thr != nil {
		cl.thr = g.thr.Clone()
	}
	if g.dims > 0 {
		cl.slotRows = append(make([]int, 0, len(g.slotRows)), g.slotRows...)
		cl.coords = append(make([]uint64, 0, len(g.coords)), g.coords...)
		cl.freeSlots = append(make([]int32, 0, cap(g.freeSlots)), g.freeSlots...)
	}
	return cl, nil
}

// Rows returns the number of keys pushed (including zero-weight ones).
func (g *Ingester) Rows() int { return g.rows }

// Seen returns the number of positive-weight keys pushed.
func (g *Ingester) Seen() int { return g.stream.Seen() }

// Tau returns the streaming IPPS threshold τ_s tracked for
// Config.ThresholdSize, and whether one was configured.
func (g *Ingester) Tau() (float64, bool) {
	if g.thr == nil {
		return 0, false
	}
	return g.thr.Tau(), true
}

// Guide returns the reservoir contents: a mergeable VarOpt sample of
// everything pushed so far, as items (original weights, ascending row
// index) plus the reservoir threshold τ₀. τ₀ == 0 means the reservoir never
// overflowed, so the items are the entire positive-weight input. Further
// pushes are rejected once Guide has been called.
func (g *Ingester) Guide() (items []varopt.StreamItem, tau0 float64) {
	g.done = true
	if g.dims > 0 {
		g.compact()
		g.buildDirectory()
	}
	sm, items := g.stream.Result()
	return items, sm.Tau
}

// buildDirectory indexes the live slots by row for Point lookups.
func (g *Ingester) buildDirectory() {
	n := g.live
	rows := make([]uint64, 0, n)
	slots := make([]int32, 0, n)
	for s, row := range g.slotRows {
		if row >= 0 {
			rows = append(rows, uint64(row))
			slots = append(slots, int32(s))
		}
	}
	tmpRows := make([]uint64, len(rows))
	tmpSlots := make([]int32, len(slots))
	var counts [256]int
	xsort.SortPairs(rows, slots, tmpRows, tmpSlots, &counts)
	g.dirRows, g.dirSlots = rows, slots
}

// Point returns the retained coordinates of the reservoir item with the
// given row index. It is only valid for indices of items returned by Guide
// on a coordinate-tracking Ingester. The returned slice aliases the
// Ingester's coordinate arena and must not be mutated.
func (g *Ingester) Point(index int) ([]uint64, bool) {
	i := sort.Search(len(g.dirRows), func(k int) bool { return g.dirRows[k] >= uint64(index) })
	if i == len(g.dirRows) || g.dirRows[i] != uint64(index) {
		return nil, false
	}
	slot := int(g.dirSlots[i])
	return g.coords[slot*g.dims : (slot+1)*g.dims], true
}
