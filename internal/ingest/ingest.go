// Package ingest is the repository's single streaming ingestion pipeline:
// a bounded-memory front end that every construction path pushes weighted
// keys through, whether the keys come from an in-memory Dataset, a CSV
// stream, stdin, or a shard of a partitioned population.
//
// An Ingester combines the three things pass 1 of every construction needs:
//
//   - a stream VarOpt reservoir (internal/varopt) of fixed capacity that
//     retains a mergeable sample of everything pushed so far, with its own
//     IPPS threshold τ₀ (0 until the reservoir overflows);
//   - optionally, the retained items' coordinates, compacted in lockstep
//     with the reservoir so memory stays O(capacity) regardless of stream
//     length; and
//   - optionally, the streaming IPPS threshold τ_s for a separate target
//     size (the paper's Algorithm 4), which the two-pass construction of §5
//     needs alongside its guide sample.
//
// Consumers: core.Builder (streaming public API), the two-pass constructions
// (guide-sample pass), and — via the dataset-backed fast path in
// internal/core and internal/engine — the serial and sharded builders.
package ingest

import (
	"errors"
	"fmt"

	"structaware/internal/ipps"
	"structaware/internal/varopt"
	"structaware/internal/xmath"
)

// ErrFinalized is returned when pushing into a result-extracted Ingester
// whose reservoir has been handed off.
var ErrFinalized = errors.New("ingest: ingester already finalized")

// Config configures an Ingester.
type Config struct {
	// Capacity is the reservoir size: the number of candidate keys retained.
	// Must be positive.
	Capacity int
	// Dims, when positive, makes the Ingester retain each reservoir item's
	// coordinates (copied on Push); Point then recovers them. Zero means
	// coordinates are not tracked (the caller can look items up by index,
	// e.g. in a Dataset).
	Dims int
	// ThresholdSize, when positive, additionally tracks the streaming IPPS
	// threshold τ_s for that target sample size over the full stream.
	ThresholdSize int
}

// Ingester is the streaming ingestion state. It is not safe for concurrent
// use; shard-parallel callers run one Ingester per shard.
type Ingester struct {
	stream *varopt.Stream
	thr    *ipps.StreamThreshold
	points map[int][]uint64
	cap    int
	dims   int
	rows   int
	done   bool
}

// New creates an Ingester. r drives the reservoir's sampling decisions.
func New(cfg Config, r xmath.Rand) (*Ingester, error) {
	if cfg.Capacity <= 0 {
		return nil, ipps.ErrBadSize
	}
	stream, err := varopt.NewStream(cfg.Capacity, r)
	if err != nil {
		return nil, err
	}
	g := &Ingester{stream: stream, cap: cfg.Capacity, dims: cfg.Dims}
	if cfg.ThresholdSize > 0 {
		if g.thr, err = ipps.NewStreamThreshold(cfg.ThresholdSize); err != nil {
			return nil, err
		}
	}
	if cfg.Dims > 0 {
		g.points = make(map[int][]uint64, 2*cfg.Capacity)
	}
	return g, nil
}

// Push consumes one weighted key. The row index assigned to the key is the
// number of prior Push calls, so dataset-backed callers pushing rows in
// order can use dataset positions as reservoir indices. pt is copied when
// coordinates are tracked and may be nil otherwise; zero-weight keys advance
// the row index but never enter the reservoir.
func (g *Ingester) Push(pt []uint64, w float64) error {
	if g.done {
		return ErrFinalized
	}
	if g.dims > 0 && len(pt) != g.dims {
		return fmt.Errorf("ingest: point has %d dims, want %d", len(pt), g.dims)
	}
	index := g.rows
	g.rows++
	if g.thr != nil {
		if err := g.thr.Process(w); err != nil {
			return err
		}
	} else if err := ipps.ValidateWeights([]float64{w}); err != nil {
		return err
	}
	if w == 0 {
		return nil
	}
	if err := g.stream.Process(index, w); err != nil {
		return err
	}
	if g.points != nil {
		g.points[index] = append([]uint64(nil), pt...)
		if len(g.points) >= 4*g.cap {
			g.compact()
		}
	}
	return nil
}

// compact drops coordinates of rows no longer held by the reservoir.
func (g *Ingester) compact() {
	_, items := g.stream.Result()
	keep := make(map[int][]uint64, len(items))
	for _, it := range items {
		if pt, ok := g.points[it.Index]; ok {
			keep[it.Index] = pt
		}
	}
	g.points = keep
}

// Rows returns the number of keys pushed (including zero-weight ones).
func (g *Ingester) Rows() int { return g.rows }

// Seen returns the number of positive-weight keys pushed.
func (g *Ingester) Seen() int { return g.stream.Seen() }

// Tau returns the streaming IPPS threshold τ_s tracked for
// Config.ThresholdSize, and whether one was configured.
func (g *Ingester) Tau() (float64, bool) {
	if g.thr == nil {
		return 0, false
	}
	return g.thr.Tau(), true
}

// Guide returns the reservoir contents: a mergeable VarOpt sample of
// everything pushed so far, as items (original weights, ascending row
// index) plus the reservoir threshold τ₀. τ₀ == 0 means the reservoir never
// overflowed, so the items are the entire positive-weight input. Further
// pushes are rejected once Guide has been called.
func (g *Ingester) Guide() (items []varopt.StreamItem, tau0 float64) {
	g.done = true
	if g.points != nil {
		g.compact()
	}
	sm, items := g.stream.Result()
	return items, sm.Tau
}

// Point returns the retained coordinates of the reservoir item with the
// given row index. It is only valid for indices of items returned by Guide
// on a coordinate-tracking Ingester.
func (g *Ingester) Point(index int) ([]uint64, bool) {
	pt, ok := g.points[index]
	return pt, ok
}
