package cliutil

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// recorder returns a Tool writing to a buffer and recording exit codes
// instead of terminating.
func recorder() (*Tool, *bytes.Buffer, *[]int) {
	var buf bytes.Buffer
	var codes []int
	t := &Tool{Name: "sastool", Stderr: &buf, Exit: func(c int) { codes = append(codes, c) }}
	return t, &buf, &codes
}

func TestCheckUsageAndCheck(t *testing.T) {
	tool, buf, codes := recorder()
	tool.CheckUsage(nil)
	tool.Check(nil)
	if len(*codes) != 0 || buf.Len() != 0 {
		t.Fatalf("nil errors must be silent (codes %v, output %q)", *codes, buf.String())
	}
	tool.CheckUsage(errors.New("-s must be positive"))
	tool.Check(errors.New("open: no such file"))
	if want := []int{2, 1}; len(*codes) != 2 || (*codes)[0] != want[0] || (*codes)[1] != want[1] {
		t.Fatalf("exit codes %v want %v", *codes, want)
	}
	out := buf.String()
	if !strings.Contains(out, "sastool: -s must be positive") || !strings.Contains(out, "sastool: open: no such file") {
		t.Fatalf("output %q missing tool-prefixed messages", out)
	}
}

func TestUsagefAndFatalf(t *testing.T) {
	tool, buf, codes := recorder()
	tool.Usagef("unknown method %q", "bogus")
	tool.Fatalf("experiment %s: %v", "fig2a", errors.New("boom"))
	if want := []int{2, 1}; (*codes)[0] != want[0] || (*codes)[1] != want[1] {
		t.Fatalf("exit codes %v want %v", *codes, want)
	}
	if out := buf.String(); !strings.Contains(out, `unknown method "bogus"`) || !strings.Contains(out, "fig2a: boom") {
		t.Fatalf("output %q", out)
	}
}

func TestValidators(t *testing.T) {
	if err := FirstError(nil, nil, Positive("-s", 1)); err != nil {
		t.Fatalf("all-valid FirstError: %v", err)
	}
	if err := FirstError(nil, Positive("-s", 0), Positive("-q", -1)); err == nil || !strings.Contains(err.Error(), "-s") {
		t.Fatalf("FirstError must surface the first failure, got %v", err)
	}
	cases := []struct {
		name string
		err  error
		want bool // want an error
	}{
		{"positive ok", Positive("-s", 5), false},
		{"positive zero", Positive("-s", 0), true},
		{"positive negative", Positive("-s", -3), true},
		{"posfloat ok", PositiveFloat("-scale", 0.5), false},
		{"posfloat zero", PositiveFloat("-scale", 0), true},
		{"nonneg ok", NonNegative("-workers", 0), false},
		{"nonneg bad", NonNegative("-workers", -1), true},
		{"range ok lo", InRange("-bits", 1, 1, 63), false},
		{"range ok hi", InRange("-bits", 63, 1, 63), false},
		{"range below", InRange("-bits", 0, 1, 63), true},
		{"range above", InRange("-bits", 64, 1, 63), true},
		{"required ok", Required("-in", "x.csv"), false},
		{"required empty", Required("-in", ""), true},
	}
	for _, c := range cases {
		if got := c.err != nil; got != c.want {
			t.Fatalf("%s: error=%v want error=%v", c.name, c.err, c.want)
		}
	}
	// Messages name the flag so the user knows what to fix.
	if err := InRange("-bits", 64, 1, 63); !strings.Contains(err.Error(), "-bits") {
		t.Fatalf("message %q must name the flag", err)
	}
}

func TestParseAssignments(t *testing.T) {
	got, err := ParseAssignments([]string{"net=data/net.sas", "data/tickets.sas"})
	if err != nil {
		t.Fatal(err)
	}
	want := []Assignment{{"net", "data/net.sas"}, {"tickets", "data/tickets.sas"}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment %d: got %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range [][]string{
		{"=path"},                   // empty name
		{"name="},                   // empty value
		{"a=1", "a=2"},              // duplicate explicit names
		{"dir/x.sas", "dir2/x.sas"}, // duplicate derived names
		{"a/b=x.sas"},               // slash would break URL routing
		{"a b=x.sas"},               // whitespace
		{"..=x.sas"},                // dot segment is cleaned away by net/http
		{"a%b=x.sas"},               // URL metacharacter
	} {
		if _, err := ParseAssignments(bad); err == nil {
			t.Fatalf("%v accepted", bad)
		}
	}
}
