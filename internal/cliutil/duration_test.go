package cliutil

import (
	"testing"
	"time"
)

func TestNonNegativeDuration(t *testing.T) {
	if err := NonNegativeDuration("-snapshot-interval", 0); err != nil {
		t.Fatalf("zero (disabled) rejected: %v", err)
	}
	if err := NonNegativeDuration("-snapshot-interval", 30*time.Second); err != nil {
		t.Fatalf("positive rejected: %v", err)
	}
	if err := NonNegativeDuration("-snapshot-interval", -time.Second); err == nil {
		t.Fatal("negative accepted")
	}
}
