// Package cliutil centralizes the flag-validation and exit-code plumbing
// shared by the repository's command-line tools (cmd/sassample,
// cmd/sasbench, cmd/sasgen, cmd/sasserve). The conventions it encodes:
//
//   - errors print to stderr as "<tool>: <message>";
//   - usage errors (bad or missing flags) exit with code 2;
//   - runtime failures (I/O, sampling errors) exit with code 1.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Tool is one command's error-reporting context.
type Tool struct {
	// Name prefixes every message ("sassample: ...").
	Name string
	// Stderr receives the messages; defaults to os.Stderr via New.
	Stderr io.Writer
	// Exit terminates the process; defaults to os.Exit via New. Tests
	// substitute a recorder (the methods below do return after calling a
	// non-terminating Exit).
	Exit func(code int)
}

// New returns a Tool wired to os.Stderr and os.Exit.
func New(name string) *Tool {
	return &Tool{Name: name, Stderr: os.Stderr, Exit: os.Exit}
}

// fail prints the message and exits with the given code.
func (t *Tool) fail(code int, msg string) {
	fmt.Fprintf(t.Stderr, "%s: %s\n", t.Name, msg)
	t.Exit(code)
}

// Usagef reports a usage error and exits with code 2.
func (t *Tool) Usagef(format string, args ...interface{}) {
	t.fail(2, fmt.Sprintf(format, args...))
}

// CheckUsage exits with code 2 when err is non-nil (flag validation).
func (t *Tool) CheckUsage(err error) {
	if err != nil {
		t.fail(2, err.Error())
	}
}

// Check exits with code 1 when err is non-nil (runtime failure).
func (t *Tool) Check(err error) {
	if err != nil {
		t.fail(1, err.Error())
	}
}

// Fatalf reports a runtime failure and exits with code 1.
func (t *Tool) Fatalf(format string, args ...interface{}) {
	t.fail(1, fmt.Sprintf(format, args...))
}

// FirstError returns the first non-nil error, so a tool can validate every
// flag in one CheckUsage call.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Positive validates an integer flag that must be > 0.
func Positive(flag string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive (got %d)", flag, v)
	}
	return nil
}

// PositiveFloat validates a float flag that must be > 0.
func PositiveFloat(flag string, v float64) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive (got %g)", flag, v)
	}
	return nil
}

// NonNegative validates an integer flag that must be >= 0.
func NonNegative(flag string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0 (got %d)", flag, v)
	}
	return nil
}

// InRange validates an integer flag that must lie in [lo, hi].
func InRange(flag string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("%s must be in [%d,%d] (got %d)", flag, lo, hi, v)
	}
	return nil
}

// NonNegativeDuration validates a duration flag that must be >= 0 (0
// conventionally meaning "disabled").
func NonNegativeDuration(flag string, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("%s must be >= 0 (got %v)", flag, d)
	}
	return nil
}

// Required validates a string flag that must be non-empty.
func Required(flag, v string) error {
	if v == "" {
		return fmt.Errorf("%s is required", flag)
	}
	return nil
}

// Assignment is one parsed "name=value" argument.
type Assignment struct {
	Name, Value string
}

// ParseAssignments parses positional "name=value" arguments (cmd/sasserve's
// summary list). A bare "value" gets its name derived from the value's last
// path element with any extension stripped ("data/net.sas" → "net").
// Names must be non-empty and unique; order is preserved.
func ParseAssignments(args []string) ([]Assignment, error) {
	out := make([]Assignment, 0, len(args))
	seen := make(map[string]bool, len(args))
	for _, arg := range args {
		name, value, ok := strings.Cut(arg, "=")
		if !ok {
			value = arg
			name = defaultName(arg)
		}
		if name == "" || value == "" {
			return nil, fmt.Errorf("argument %q is not name=value", arg)
		}
		if strings.ContainsAny(name, "/\\ \t%#?") || name == "." || name == ".." {
			// Names become URL path segments (sasserve routes on
			// /v1/summaries/{name}); slashes, dot segments, and URL
			// metacharacters would make the summary unreachable.
			return nil, fmt.Errorf("name %q is not a valid URL path segment", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate name %q", name)
		}
		seen[name] = true
		out = append(out, Assignment{Name: name, Value: value})
	}
	return out, nil
}

// defaultName derives a name from a path: last element, extension stripped.
func defaultName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}
