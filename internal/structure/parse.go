package structure

import (
	"fmt"
	"strconv"
	"strings"
)

// Textual range syntax, shared by the CLIs (sassample -query) and the
// sasserve HTTP API: an interval is "lo:hi" (inclusive ends) and a box is
// one interval per axis joined by commas, e.g. "0:1023,512:767".

// ParseInterval parses "lo:hi" into an inclusive Interval.
func ParseInterval(s string) (Interval, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return Interval{}, fmt.Errorf("structure: interval %q is not lo:hi", s)
	}
	l, err := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("structure: interval %q: bad lo: %v", s, err)
	}
	h, err := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
	if err != nil {
		return Interval{}, fmt.Errorf("structure: interval %q: bad hi: %v", s, err)
	}
	if l > h {
		return Interval{}, fmt.Errorf("structure: interval %q is empty (lo > hi)", s)
	}
	return Interval{Lo: l, Hi: h}, nil
}

// ParseRange parses a comma-separated list of "lo:hi" intervals into a box,
// one interval per axis: "0:1023,512:767" is the 2-D box
// [0,1023]×[512,767].
func ParseRange(s string) (Range, error) {
	parts := strings.Split(s, ",")
	r := make(Range, 0, len(parts))
	for _, part := range parts {
		iv, err := ParseInterval(part)
		if err != nil {
			return nil, err
		}
		r = append(r, iv)
	}
	return r, nil
}

// String renders the interval in the parseable "lo:hi" form.
func (iv Interval) String() string {
	return strconv.FormatUint(iv.Lo, 10) + ":" + strconv.FormatUint(iv.Hi, 10)
}

// String renders the box in the parseable comma-joined form.
func (r Range) String() string {
	parts := make([]string, len(r))
	for d, iv := range r {
		parts[d] = iv.String()
	}
	return strings.Join(parts, ",")
}

// ParseAxisSpec parses a textual key-domain description into axes: a
// comma-separated list of "kind:bits" terms, e.g. "bittrie:32,bittrie:32"
// for a 2-D domain of 32-bit binary hierarchies or "ordered:20" for one
// linear 20-bit axis. This is how live summaries declare their domain on
// the sasserve command line (a domain that, unlike a served file's, has no
// serialized axis metadata to read). Explicit hierarchies have no textual
// form — they need a whole tree — and are rejected with a hint.
func ParseAxisSpec(s string) ([]Axis, error) {
	parts := strings.Split(s, ",")
	axes := make([]Axis, 0, len(parts))
	for _, part := range parts {
		kind, bits, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("structure: axis %q is not kind:bits (e.g. bittrie:32)", part)
		}
		b, err := strconv.Atoi(strings.TrimSpace(bits))
		if err != nil {
			return nil, fmt.Errorf("structure: axis %q: bad bit width: %v", part, err)
		}
		var ax Axis
		switch kind {
		case "bittrie":
			ax = BitTrieAxis(b)
		case "ordered":
			ax = OrderedAxis(b)
		case "explicit":
			return nil, fmt.Errorf("structure: explicit hierarchies have no textual axis form; serve a serialized summary instead")
		default:
			return nil, fmt.Errorf("structure: unknown axis kind %q (want bittrie or ordered)", kind)
		}
		if err := ax.Validate(); err != nil {
			return nil, err
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// Check validates the box against an axis description: one interval per
// axis, each non-empty and inside the axis domain. Serving layers call this
// before querying so malformed client input fails loudly instead of
// silently selecting nothing.
func (r Range) Check(axes []Axis) error {
	if len(r) != len(axes) {
		return fmt.Errorf("structure: range has %d intervals for %d axes", len(r), len(axes))
	}
	for d, iv := range r {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("structure: axis %d interval %s is empty (lo > hi)", d, iv)
		}
		if dom := axes[d].DomainSize(); iv.Hi >= dom {
			return fmt.Errorf("structure: axis %d interval %s exceeds domain [0,%d]", d, iv, dom-1)
		}
	}
	return nil
}
