package structure

import (
	"bytes"
	"errors"
	"testing"

	"structaware/internal/hierarchy"
)

func TestAxisRoundTripFlat(t *testing.T) {
	for _, a := range []Axis{OrderedAxis(1), OrderedAxis(63), BitTrieAxis(32)} {
		var buf bytes.Buffer
		if err := WriteAxis(&buf, a); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAxis(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != a.Kind || got.Bits != a.Bits {
			t.Fatalf("round trip %+v -> %+v", a, got)
		}
	}
}

func TestAxisRoundTripExplicitTree(t *testing.T) {
	b := hierarchy.NewBuilder()
	c1 := b.AddChild(0)
	c2 := b.AddChild(0)
	b.AddChild(c1)
	b.AddChild(c1)
	b.AddChild(c2)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := ExplicitAxis(tree)
	var buf bytes.Buffer
	if err := WriteAxis(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAxis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != Explicit || got.Tree == nil {
		t.Fatalf("explicit axis decoded as %+v", got)
	}
	if got.Tree.NumNodes() != tree.NumNodes() || got.Tree.NumLeaves() != tree.NumLeaves() {
		t.Fatalf("tree shape lost: %d/%d nodes, %d/%d leaves",
			got.Tree.NumNodes(), tree.NumNodes(), got.Tree.NumLeaves(), tree.NumLeaves())
	}
	// The DFS leaf linearization — the coordinate system — is reproduced
	// exactly, node by node.
	for v := int32(0); int(v) < tree.NumNodes(); v++ {
		if got.Tree.Parent(v) != tree.Parent(v) {
			t.Fatalf("node %d parent %d want %d", v, got.Tree.Parent(v), tree.Parent(v))
		}
		wantLo, wantHi, wantOK := tree.LeafInterval(v)
		gotLo, gotHi, gotOK := got.Tree.LeafInterval(v)
		if gotLo != wantLo || gotHi != wantHi || gotOK != wantOK {
			t.Fatalf("node %d leaf interval [%d,%d] want [%d,%d]", v, gotLo, gotHi, wantLo, wantHi)
		}
	}
}

func TestReadAxisRejectsMalformedInput(t *testing.T) {
	// Invalid widths never encode.
	if err := WriteAxis(&bytes.Buffer{}, OrderedAxis(64)); err == nil {
		t.Fatal("bits 64 must not encode")
	}
	cases := map[string][]byte{
		"empty":           nil,
		"unknown kind":    {9, 1, 0},
		"bits zero":       {0, 0, 0},
		"bits oversized":  {0, 200, 0},
		"truncated bits":  {0, 1},
		"zero tree nodes": {2, 0, 0, 0, 0},
		"truncated tree":  {2, 3, 0, 0, 0, 255, 255},
		"malformed tree":  {2, 2, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}, // cycle: 0->1->0
	}
	for name, raw := range cases {
		if _, err := ReadAxis(bytes.NewReader(raw)); !errors.Is(err, ErrBadAxisEncoding) {
			t.Fatalf("%s: %v want ErrBadAxisEncoding", name, err)
		}
	}
	// Absurd node counts are rejected before allocation.
	huge := []byte{2, 0xff, 0xff, 0xff, 0x7f}
	if _, err := ReadAxis(bytes.NewReader(huge)); !errors.Is(err, ErrBadAxisEncoding) {
		t.Fatal("huge node count must be rejected")
	}
}
