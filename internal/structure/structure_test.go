package structure

import (
	"testing"

	"structaware/internal/hierarchy"
	"structaware/internal/xmath"
)

func twoDAxes() []Axis {
	return []Axis{BitTrieAxis(8), OrderedAxis(8)}
}

func TestNewDatasetValidation(t *testing.T) {
	axes := twoDAxes()
	if _, err := NewDataset(nil, nil, nil); err == nil {
		t.Fatal("no axes must error")
	}
	if _, err := NewDataset(axes, [][]uint64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewDataset(axes, [][]uint64{{1}}, []float64{1}); err == nil {
		t.Fatal("dim mismatch must error")
	}
	if _, err := NewDataset(axes, [][]uint64{{1, 2}}, []float64{-1}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := NewDataset(axes, [][]uint64{{300, 2}}, []float64{1}); err == nil {
		t.Fatal("out-of-domain coordinate must error")
	}
	if _, err := NewDataset([]Axis{OrderedAxis(0)}, nil, nil); err == nil {
		t.Fatal("bits=0 must error")
	}
	if _, err := NewDataset([]Axis{{Kind: Explicit}}, nil, nil); err == nil {
		t.Fatal("explicit axis without tree must error")
	}
}

func TestDatasetDeduplication(t *testing.T) {
	axes := twoDAxes()
	pts := [][]uint64{{1, 2}, {3, 4}, {1, 2}, {1, 3}}
	ws := []float64{1, 2, 5, 3}
	d, err := NewDataset(axes, pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len %d want 3 after dedup", d.Len())
	}
	if !xmath.AlmostEqual(d.TotalWeight(), 11, 1e-12) {
		t.Fatalf("total %v want 11", d.TotalWeight())
	}
	// The merged key (1,2) carries weight 6.
	found := false
	for i := 0; i < d.Len(); i++ {
		if d.Coords[0][i] == 1 && d.Coords[1][i] == 2 {
			found = true
			if d.Weights[i] != 6 {
				t.Fatalf("merged weight %v want 6", d.Weights[i])
			}
		}
	}
	if !found {
		t.Fatal("merged key missing")
	}
}

func TestRangeSumAndQuerySum(t *testing.T) {
	axes := twoDAxes()
	pts := [][]uint64{{0, 0}, {10, 10}, {10, 20}, {200, 200}}
	ws := []float64{1, 2, 4, 8}
	d, err := NewDataset(axes, pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	r := Range{{Lo: 0, Hi: 15}, {Lo: 0, Hi: 15}}
	if got := d.RangeSum(r); got != 3 {
		t.Fatalf("range sum %v want 3", got)
	}
	q := Query{
		{{Lo: 0, Hi: 15}, {Lo: 0, Hi: 15}},
		{{Lo: 100, Hi: 255}, {Lo: 100, Hi: 255}},
	}
	if got := d.QuerySum(q); got != 11 {
		t.Fatalf("query sum %v want 11", got)
	}
	if got := d.RangeSum(d.FullRange()); got != 15 {
		t.Fatalf("full range sum %v want 15", got)
	}
}

func TestMassInRange(t *testing.T) {
	axes := []Axis{OrderedAxis(4)}
	pts := [][]uint64{{0}, {5}, {10}, {15}}
	d, err := NewDataset(axes, pts, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{0.5, 0.25, 0.75, 1}
	if got := d.MassInRange(p, Range{{Lo: 0, Hi: 9}}); !xmath.AlmostEqual(got, 0.75, 1e-12) {
		t.Fatalf("mass %v want 0.75", got)
	}
}

func TestIntervalOps(t *testing.T) {
	a := Interval{2, 10}
	if !a.Contains(2) || !a.Contains(10) || a.Contains(11) {
		t.Fatal("contains broken")
	}
	if a.Width() != 9 {
		t.Fatalf("width %d", a.Width())
	}
	b := Interval{8, 20}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("overlap broken")
	}
	got, ok := a.Intersect(b)
	if !ok || got.Lo != 8 || got.Hi != 10 {
		t.Fatalf("intersect %v", got)
	}
	if _, ok := a.Intersect(Interval{11, 12}); ok {
		t.Fatal("disjoint intervals must not intersect")
	}
}

func TestExplicitAxisDomainSize(t *testing.T) {
	b := hierarchy.NewBuilder()
	c1 := b.AddChild(0)
	b.AddChild(0)
	b.AddChild(c1)
	b.AddChild(c1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ax := ExplicitAxis(tree)
	if ax.DomainSize() != 3 {
		t.Fatalf("domain size %d want 3 (leaves)", ax.DomainSize())
	}
	if err := ax.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeContainsAndOverlaps(t *testing.T) {
	r := Range{{0, 10}, {5, 9}}
	if !r.Contains([]uint64{3, 7}) || r.Contains([]uint64{3, 10}) {
		t.Fatal("contains broken")
	}
	if !r.Overlaps(Range{{10, 20}, {9, 30}}) {
		t.Fatal("edge overlap expected")
	}
	if r.Overlaps(Range{{11, 20}, {5, 9}}) {
		t.Fatal("disjoint boxes must not overlap")
	}
}
