package structure

import (
	"math"
	"testing"
	"testing/quick"

	"structaware/internal/xmath"
)

// TestDatasetQuickDedupInvariants drives NewDataset with generated inputs
// and checks the dedup invariants against a reference map.
func TestDatasetQuickDedupInvariants(t *testing.T) {
	axes := []Axis{OrderedAxis(8), BitTrieAxis(8)}
	f := func(raw []uint16, wraw []float64) bool {
		n := len(raw) / 2
		if n > len(wraw) {
			n = len(wraw)
		}
		pts := make([][]uint64, n)
		ws := make([]float64, n)
		ref := map[[2]uint64]float64{}
		var total float64
		for i := 0; i < n; i++ {
			x := uint64(raw[2*i]) & 0xff
			y := uint64(raw[2*i+1]) & 0xff
			w := math.Abs(wraw[i])
			if math.IsNaN(w) || math.IsInf(w, 0) || w > 1e12 {
				w = 1
			}
			pts[i] = []uint64{x, y}
			ws[i] = w
			ref[[2]uint64{x, y}] += w
			total += w
		}
		ds, err := NewDataset(axes, pts, ws)
		if err != nil {
			return false
		}
		if ds.Len() != len(ref) {
			return false
		}
		if !xmath.AlmostEqual(ds.TotalWeight(), total, 1e-6) {
			return false
		}
		for i := 0; i < ds.Len(); i++ {
			key := [2]uint64{ds.Coords[0][i], ds.Coords[1][i]}
			want, ok := ref[key]
			if !ok || !xmath.AlmostEqual(ds.Weights[i], want, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeSumQuickAdditivity checks that disjoint boxes sum like their
// union query.
func TestRangeSumQuickAdditivity(t *testing.T) {
	r := xmath.NewRand(31)
	axes := []Axis{OrderedAxis(10), OrderedAxis(10)}
	pts := make([][]uint64, 500)
	ws := make([]float64, 500)
	for i := range pts {
		pts[i] = []uint64{r.Uint64() & 0x3ff, r.Uint64() & 0x3ff}
		ws[i] = 1 + 3*r.Float64()
	}
	ds, err := NewDataset(axes, pts, ws)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		// Split the x-axis at a random point: the two halves plus full-y
		// intervals partition any x-interval query.
		lo := r.Uint64() & 0x3ff
		hi := lo + r.Uint64()%(0x400-lo)
		if hi <= lo {
			continue
		}
		mid := lo + r.Uint64()%(hi-lo)
		yiv := Interval{0, 0x3ff}
		whole := ds.RangeSum(Range{{Lo: lo, Hi: hi}, yiv})
		left := ds.RangeSum(Range{{Lo: lo, Hi: mid}, yiv})
		right := ds.RangeSum(Range{{Lo: mid + 1, Hi: hi}, yiv})
		if !xmath.AlmostEqual(whole, left+right, 1e-9) {
			t.Fatalf("additivity broken: %v != %v + %v", whole, left, right)
		}
		asQuery := ds.QuerySum(Query{{{Lo: lo, Hi: mid}, yiv}, {{Lo: mid + 1, Hi: hi}, yiv}})
		if !xmath.AlmostEqual(whole, asQuery, 1e-9) {
			t.Fatalf("query sum disagrees: %v vs %v", whole, asQuery)
		}
	}
}
