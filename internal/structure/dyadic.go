package structure

// Dyadic intervals underpin the wavelet and sketch baselines: level l splits
// the domain [0, 2^bits) into 2^l aligned blocks of width 2^(bits-l).
// DyadicCell identifies one such block.
type DyadicCell struct {
	// Level is the dyadic level: 0 is the whole domain, bits is unit cells.
	Level int
	// Index is the block number within the level, in [0, 2^Level).
	Index uint64
}

// Interval returns the coordinate interval covered by the cell within a
// domain of the given bit width.
func (c DyadicCell) Interval(bits int) Interval {
	width := uint64(1) << uint(bits-c.Level)
	lo := c.Index * width
	return Interval{lo, lo + width - 1}
}

// DyadicDecompose expresses the inclusive interval [lo, hi] ⊆ [0, 2^bits) as
// a minimal disjoint union of dyadic cells. The classic bound holds: at most
// 2·bits cells are produced.
func DyadicDecompose(lo, hi uint64, bits int) []DyadicCell {
	if lo > hi {
		return nil
	}
	var out []DyadicCell
	for lo <= hi {
		// Largest aligned block starting at lo that fits in [lo, hi].
		size := uint64(1) << uint(bits)
		level := 0
		for size > 1 {
			if lo%size == 0 && lo+size-1 <= hi {
				break
			}
			size >>= 1
			level++
		}
		out = append(out, DyadicCell{Level: level, Index: lo / size})
		next := lo + size
		if next <= lo { // overflow guard at domain end
			break
		}
		lo = next
	}
	return out
}

// DyadicAncestors returns the chain of dyadic cells containing coordinate x,
// from level 0 (whole domain) down to level bits (unit cell): bits+1 cells.
func DyadicAncestors(x uint64, bits int) []DyadicCell {
	out := make([]DyadicCell, bits+1)
	for l := 0; l <= bits; l++ {
		out[l] = DyadicCell{Level: l, Index: x >> uint(bits-l)}
	}
	return out
}
