package structure

import (
	"strings"
	"testing"
)

func TestParseAxisSpec(t *testing.T) {
	axes, err := ParseAxisSpec("bittrie:32, ordered:20,bittrie:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Axis{BitTrieAxis(32), OrderedAxis(20), BitTrieAxis(1)}
	if len(axes) != len(want) {
		t.Fatalf("%d axes, want %d", len(axes), len(want))
	}
	for d := range want {
		if axes[d].Kind != want[d].Kind || axes[d].Bits != want[d].Bits {
			t.Fatalf("axis %d: %+v, want %+v", d, axes[d], want[d])
		}
	}

	for spec, wantErr := range map[string]string{
		"":              "kind:bits",
		"bittrie":       "kind:bits",
		"bittrie:x":     "bad bit width",
		"bittrie:0":     "out of [1,63]",
		"ordered:64":    "out of [1,63]",
		"explicit:8":    "no textual axis form",
		"quadtree:8":    "unknown axis kind",
		"bittrie:32,,":  "kind:bits",
		"bittrie:32:16": "bad bit width",
	} {
		_, err := ParseAxisSpec(spec)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("ParseAxisSpec(%q) = %v, want error containing %q", spec, err, wantErr)
		}
	}
}
