package structure

import "testing"

func TestParseInterval(t *testing.T) {
	iv, err := ParseInterval("10:20")
	if err != nil || iv != (Interval{Lo: 10, Hi: 20}) {
		t.Fatalf("got %v, %v", iv, err)
	}
	if _, err := ParseInterval("10"); err == nil {
		t.Fatal("missing colon accepted")
	}
	if _, err := ParseInterval("a:b"); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ParseInterval("-1:5"); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := ParseInterval("20:10"); err == nil {
		t.Fatal("inverted accepted")
	}
}

func TestParseRangeRoundTrip(t *testing.T) {
	for _, text := range []string{"0:1023", "0:1023,512:767", "1:2,3:4,5:6"} {
		r, err := ParseRange(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if r.String() != text {
			t.Fatalf("%q round-trips to %q", text, r.String())
		}
	}
	if _, err := ParseRange(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ParseRange("1:2,,3:4"); err == nil {
		t.Fatal("empty component accepted")
	}
}

func TestRangeCheck(t *testing.T) {
	axes := []Axis{OrderedAxis(10), OrderedAxis(10)}
	ok := Range{{Lo: 0, Hi: 1023}, {Lo: 5, Hi: 5}}
	if err := ok.Check(axes); err != nil {
		t.Fatal(err)
	}
	cases := []Range{
		{{Lo: 0, Hi: 10}},                    // wrong dims
		{{Lo: 0, Hi: 1024}, {Lo: 0, Hi: 10}}, // out of domain
		{{Lo: 7, Hi: 3}, {Lo: 0, Hi: 10}},    // empty interval
		{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}, {}}, // too many dims
	}
	for i, r := range cases {
		if err := r.Check(axes); err == nil {
			t.Fatalf("case %d: %v accepted", i, r)
		}
	}
}
