// Package structure defines the key-domain model shared by every sampler and
// summary in this repository: axes (ordered, bit-trie hierarchy, or explicit
// hierarchy), multi-dimensional columnar datasets of weighted keys, and
// structural ranges (axis-parallel boxes) and queries (unions of disjoint
// boxes) — the range spaces (K, R) of §2 of Cohen, Cormode, Duffield
// (VLDB 2011).
//
// All axes expose a linear uint64 coordinate: ordered axes natively,
// bit-trie hierarchies via the numeric key (numeric order is a DFS
// linearization of the trie, so every prefix is an interval), and explicit
// hierarchies via their DFS leaf linearization (see internal/hierarchy).
// Consequently every structural range of the paper is an Interval per axis,
// and product-structure ranges are boxes.
package structure

import (
	"errors"
	"fmt"
	"math"

	"structaware/internal/hierarchy"
	"structaware/internal/xmath"
)

// AxisKind enumerates the supported one-dimensional structures.
type AxisKind int

const (
	// Ordered is a linear order over uint64 coordinates; ranges are
	// arbitrary intervals.
	Ordered AxisKind = iota
	// BitTrie is the implicit binary hierarchy over b-bit keys (e.g. IPv4
	// prefixes for b=32); ranges are prefix intervals.
	BitTrie
	// Explicit is an arbitrary rooted tree with varying branching factors;
	// coordinates are DFS-linearized leaf positions and ranges are the leaf
	// intervals of tree nodes.
	Explicit
)

// String implements fmt.Stringer.
func (k AxisKind) String() string {
	switch k {
	case Ordered:
		return "ordered"
	case BitTrie:
		return "bittrie"
	case Explicit:
		return "explicit"
	default:
		return fmt.Sprintf("AxisKind(%d)", int(k))
	}
}

// Axis describes one dimension of the key domain.
type Axis struct {
	Kind AxisKind
	// Bits is the domain width for Ordered and BitTrie axes: coordinates lie
	// in [0, 2^Bits). Must be in [1, 63] so interval arithmetic stays within
	// int64-safe territory.
	Bits int
	// Tree is the hierarchy for Explicit axes; coordinates are leaf
	// positions in its linearization.
	Tree *hierarchy.Tree
}

// OrderedAxis returns an ordered axis over [0, 2^bits).
func OrderedAxis(bits int) Axis { return Axis{Kind: Ordered, Bits: bits} }

// BitTrieAxis returns a binary-hierarchy axis over [0, 2^bits).
func BitTrieAxis(bits int) Axis { return Axis{Kind: BitTrie, Bits: bits} }

// ExplicitAxis returns an axis backed by an explicit hierarchy.
func ExplicitAxis(t *hierarchy.Tree) Axis { return Axis{Kind: Explicit, Tree: t} }

// DomainSize returns the number of distinct coordinates on the axis.
func (a Axis) DomainSize() uint64 {
	if a.Kind == Explicit {
		return uint64(a.Tree.NumLeaves())
	}
	return uint64(1) << uint(a.Bits)
}

// Validate checks the axis description.
func (a Axis) Validate() error {
	switch a.Kind {
	case Ordered, BitTrie:
		if a.Bits < 1 || a.Bits > 63 {
			return fmt.Errorf("structure: axis bits %d out of [1,63]", a.Bits)
		}
	case Explicit:
		if a.Tree == nil {
			return errors.New("structure: explicit axis without tree")
		}
		if a.Tree.NumLeaves() == 0 {
			return errors.New("structure: explicit axis with no leaves")
		}
	default:
		return fmt.Errorf("structure: unknown axis kind %d", a.Kind)
	}
	return nil
}

// Interval is an inclusive coordinate interval [Lo, Hi].
type Interval struct {
	Lo, Hi uint64
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x uint64) bool { return iv.Lo <= x && x <= iv.Hi }

// Width returns the number of coordinates covered.
func (iv Interval) Width() uint64 { return iv.Hi - iv.Lo + 1 }

// Overlaps reports whether two intervals intersect.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// Intersect returns the intersection and whether it is non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	lo, hi := max(iv.Lo, o.Lo), min(iv.Hi, o.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// Range is an axis-parallel box: one interval per dimension.
type Range []Interval

// Contains reports whether the point pt (one coordinate per dimension) lies
// inside the box.
func (r Range) Contains(pt []uint64) bool {
	for d, iv := range r {
		if !iv.Contains(pt[d]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether two boxes intersect.
func (r Range) Overlaps(o Range) bool {
	for d := range r {
		if !r[d].Overlaps(o[d]) {
			return false
		}
	}
	return true
}

// Query is a union of pairwise-disjoint boxes (the multi-range queries of
// the paper's experiments).
type Query []Range

// NumRanges returns the number of boxes in the query.
func (q Query) NumRanges() int { return len(q) }

// Dataset is a columnar multiset of weighted multi-dimensional keys.
// Identical keys are merged at construction; weights are finite and
// non-negative.
type Dataset struct {
	Axes []Axis
	// Coords[d][i] is the coordinate of item i on axis d.
	Coords [][]uint64
	// Weights[i] is the weight of item i.
	Weights []float64

	totalWeight float64
}

// NewDataset validates and builds a dataset from row-major points.
// points[i][d] is the coordinate of item i on axis d. Duplicate keys are
// merged by summing their weights.
func NewDataset(axes []Axis, points [][]uint64, weights []float64) (*Dataset, error) {
	if len(axes) == 0 {
		return nil, errors.New("structure: dataset needs at least one axis")
	}
	for d, a := range axes {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("axis %d: %w", d, err)
		}
	}
	if len(points) != len(weights) {
		return nil, fmt.Errorf("structure: %d points but %d weights", len(points), len(weights))
	}
	dims := len(axes)
	seen := make(map[string]int, len(points))
	var keyBuf []byte
	ds := &Dataset{Axes: axes, Coords: make([][]uint64, dims)}
	for i, pt := range points {
		if len(pt) != dims {
			return nil, fmt.Errorf("structure: point %d has %d dims, want %d", i, len(pt), dims)
		}
		w := weights[i]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("structure: weight %d invalid: %v", i, w)
		}
		for d, x := range pt {
			if x >= axes[d].DomainSize() {
				return nil, fmt.Errorf("structure: point %d coordinate %d out of domain on axis %d", i, x, d)
			}
		}
		keyBuf = keyBuf[:0]
		for _, x := range pt {
			for b := 0; b < 8; b++ {
				keyBuf = append(keyBuf, byte(x>>(8*b)))
			}
		}
		if j, ok := seen[string(keyBuf)]; ok {
			ds.Weights[j] += w
			ds.totalWeight += w
			continue
		}
		seen[string(keyBuf)] = len(ds.Weights)
		for d, x := range pt {
			ds.Coords[d] = append(ds.Coords[d], x)
		}
		ds.Weights = append(ds.Weights, w)
		ds.totalWeight += w
	}
	return ds, nil
}

// Len returns the number of (distinct) keys.
func (d *Dataset) Len() int { return len(d.Weights) }

// Dims returns the number of axes.
func (d *Dataset) Dims() int { return len(d.Axes) }

// TotalWeight returns the sum of all weights.
func (d *Dataset) TotalWeight() float64 { return d.totalWeight }

// Point materializes item i's coordinates into dst (allocating if nil).
func (d *Dataset) Point(i int, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, d.Dims())
	}
	for dim := range d.Coords {
		dst[dim] = d.Coords[dim][i]
	}
	return dst
}

// InRange reports whether item i lies in the box r.
func (d *Dataset) InRange(i int, r Range) bool {
	for dim, iv := range r {
		if !iv.Contains(d.Coords[dim][i]) {
			return false
		}
	}
	return true
}

// RangeSum returns the exact weight sum over box r.
func (d *Dataset) RangeSum(r Range) float64 {
	var k xmath.KahanSum
	for i := range d.Weights {
		if d.InRange(i, r) {
			k.Add(d.Weights[i])
		}
	}
	return k.Sum()
}

// QuerySum returns the exact weight sum over the (disjoint) boxes of q.
func (d *Dataset) QuerySum(q Query) float64 {
	var k xmath.KahanSum
	for i := range d.Weights {
		for _, r := range q {
			if d.InRange(i, r) {
				k.Add(d.Weights[i])
				break
			}
		}
	}
	return k.Sum()
}

// MassInRange returns Σ p_i over items inside box r: the expected number of
// samples p(R) of the paper when p holds inclusion probabilities.
func (d *Dataset) MassInRange(p []float64, r Range) float64 {
	var k xmath.KahanSum
	for i := range d.Weights {
		if d.InRange(i, r) {
			k.Add(p[i])
		}
	}
	return k.Sum()
}

// FullRange returns the box covering the whole domain.
func (d *Dataset) FullRange() Range {
	r := make(Range, d.Dims())
	for dim, a := range d.Axes {
		r[dim] = Interval{0, a.DomainSize() - 1}
	}
	return r
}
