package structure

import (
	"testing"

	"structaware/internal/xmath"
)

func TestDyadicDecomposeExactCover(t *testing.T) {
	r := xmath.NewRand(1)
	for trial := 0; trial < 500; trial++ {
		bits := 1 + r.Intn(16)
		n := uint64(1) << uint(bits)
		lo := r.Uint64() % n
		hi := lo + r.Uint64()%(n-lo)
		cells := DyadicDecompose(lo, hi, bits)
		if len(cells) > 2*bits {
			t.Fatalf("too many cells: %d > 2*%d for [%d,%d]", len(cells), bits, lo, hi)
		}
		// Cells must tile [lo,hi] exactly, in order, without overlap.
		next := lo
		for _, c := range cells {
			iv := c.Interval(bits)
			if iv.Lo != next {
				t.Fatalf("gap: cell starts at %d want %d", iv.Lo, next)
			}
			next = iv.Hi + 1
		}
		if next != hi+1 {
			t.Fatalf("cover ends at %d want %d", next-1, hi)
		}
	}
}

func TestDyadicDecomposeWholeDomain(t *testing.T) {
	cells := DyadicDecompose(0, (1<<10)-1, 10)
	if len(cells) != 1 || cells[0].Level != 0 || cells[0].Index != 0 {
		t.Fatalf("whole domain should be one level-0 cell, got %v", cells)
	}
}

func TestDyadicDecomposeSinglePoint(t *testing.T) {
	cells := DyadicDecompose(5, 5, 4)
	if len(cells) != 1 || cells[0].Level != 4 || cells[0].Index != 5 {
		t.Fatalf("point should be unit cell, got %v", cells)
	}
}

func TestDyadicDecomposeEmptyOnInverted(t *testing.T) {
	if cells := DyadicDecompose(7, 3, 4); cells != nil {
		t.Fatalf("inverted interval should be empty, got %v", cells)
	}
}

func TestDyadicAncestorsChain(t *testing.T) {
	bits := 8
	x := uint64(173)
	anc := DyadicAncestors(x, bits)
	if len(anc) != bits+1 {
		t.Fatalf("ancestors %d want %d", len(anc), bits+1)
	}
	for l, c := range anc {
		if c.Level != l {
			t.Fatalf("level %d want %d", c.Level, l)
		}
		iv := c.Interval(bits)
		if !iv.Contains(x) {
			t.Fatalf("ancestor at level %d does not contain %d: %v", l, x, iv)
		}
		if l > 0 {
			parent := anc[l-1].Interval(bits)
			if iv.Lo < parent.Lo || iv.Hi > parent.Hi {
				t.Fatal("ancestor chain not nested")
			}
		}
	}
	if anc[bits].Interval(bits).Width() != 1 {
		t.Fatal("deepest ancestor must be the unit cell")
	}
}
