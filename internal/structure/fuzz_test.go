package structure

import "testing"

// The textual range and axis-spec parsers sit directly behind the HTTP
// API's query parameters: arbitrary client bytes reach them unfiltered, so
// their contract is "error, never panic", and every accepted input must
// round-trip through the canonical String form.

func FuzzParseRange(f *testing.F) {
	for _, seed := range []string{
		"0:1023",
		"0:1023,512:767",
		"1:2,3:4,5:6",
		" 7 : 9 ",
		"",
		",",
		":",
		"a:b",
		"5:2",
		"0:18446744073709551615",
		"18446744073709551616:0",
		"0:1023,",
		"0x10:20",
		"+1:2",
		"1:2,3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		box, err := ParseRange(s)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		if len(box) == 0 {
			t.Fatalf("ParseRange(%q) accepted an empty box", s)
		}
		for d, iv := range box {
			if iv.Lo > iv.Hi {
				t.Fatalf("ParseRange(%q) axis %d: empty interval %v accepted", s, d, iv)
			}
		}
		// Canonical round trip: the String form re-parses to the same box.
		back, err := ParseRange(box.String())
		if err != nil {
			t.Fatalf("ParseRange(%q).String() = %q does not re-parse: %v", s, box.String(), err)
		}
		if len(back) != len(box) {
			t.Fatalf("round trip of %q changed dims: %d -> %d", s, len(box), len(back))
		}
		for d := range box {
			if back[d] != box[d] {
				t.Fatalf("round trip of %q changed axis %d: %v -> %v", s, d, box[d], back[d])
			}
		}
	})
}

func FuzzParseAxisSpec(f *testing.F) {
	for _, seed := range []string{
		"bittrie:10",
		"bittrie:10,bittrie:10",
		"ordered:20",
		"bittrie:63,ordered:1",
		"bittrie:0",
		"bittrie:64",
		"bittrie:-1",
		"explicit:5",
		"qdigest:10",
		"bittrie",
		":",
		"",
		" bittrie : 12 ",
		"bittrie:10,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		axes, err := ParseAxisSpec(s)
		if err != nil {
			return
		}
		if len(axes) == 0 {
			t.Fatalf("ParseAxisSpec(%q) accepted an empty axis list", s)
		}
		for d, ax := range axes {
			// Every accepted axis is fully valid and has a usable domain —
			// the live-summary startup path builds on this without re-checking.
			if err := ax.Validate(); err != nil {
				t.Fatalf("ParseAxisSpec(%q) axis %d invalid: %v", s, d, err)
			}
			if ax.DomainSize() == 0 {
				t.Fatalf("ParseAxisSpec(%q) axis %d has zero domain", s, d)
			}
		}
	})
}
