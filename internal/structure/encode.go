package structure

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"structaware/internal/hierarchy"
)

// Axis metadata encoding: the binary schema description embedded in
// serialized summaries (internal/core). Ordered and bit-trie axes encode
// their domain width; explicit-hierarchy axes embed the full tree as a
// parent vector, so a summary shipped to another process round-trips with
// its hierarchy intact (hierarchy.New orders children by node id, which is
// exactly how every Tree in this repository is built, so the DFS leaf
// linearization — and with it every coordinate — is reproduced bit for
// bit).
//
// Layout (little endian):
//
//	kind u8
//	Ordered/BitTrie: bits u16
//	Explicit:        nodes u32 | parents nodes×i32 (-1 marks the root)

// ErrBadAxisEncoding is returned when decoding axis metadata fails.
var ErrBadAxisEncoding = errors.New("structure: bad axis encoding")

// maxEncodedTreeNodes bounds decoded hierarchy sizes so corrupt or hostile
// input cannot trigger absurd allocations.
const maxEncodedTreeNodes = 1 << 26

// WriteAxis writes the axis metadata to w.
func WriteAxis(w io.Writer, a Axis) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(a.Kind)); err != nil {
		return err
	}
	if a.Kind == Explicit {
		n := a.Tree.NumNodes()
		if err := binary.Write(w, binary.LittleEndian, uint32(n)); err != nil {
			return err
		}
		parents := make([]int32, n)
		for v := int32(0); int(v) < n; v++ {
			parents[v] = a.Tree.Parent(v)
		}
		return binary.Write(w, binary.LittleEndian, parents)
	}
	return binary.Write(w, binary.LittleEndian, uint16(a.Bits))
}

// ReadAxis decodes one axis written by WriteAxis. Decoded metadata is fully
// validated: malformed trees and out-of-range widths are rejected rather
// than deferred to query time.
func ReadAxis(r io.Reader) (Axis, error) {
	var kind uint8
	if err := binary.Read(r, binary.LittleEndian, &kind); err != nil {
		return Axis{}, fmt.Errorf("%w: kind: %v", ErrBadAxisEncoding, err)
	}
	k := AxisKind(kind)
	switch k {
	case Ordered, BitTrie:
		var bits uint16
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return Axis{}, fmt.Errorf("%w: bits: %v", ErrBadAxisEncoding, err)
		}
		a := Axis{Kind: k, Bits: int(bits)}
		if err := a.Validate(); err != nil {
			return Axis{}, fmt.Errorf("%w: %v", ErrBadAxisEncoding, err)
		}
		return a, nil
	case Explicit:
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return Axis{}, fmt.Errorf("%w: node count: %v", ErrBadAxisEncoding, err)
		}
		if n == 0 || n > maxEncodedTreeNodes {
			return Axis{}, fmt.Errorf("%w: %d tree nodes", ErrBadAxisEncoding, n)
		}
		parents := make([]int32, n)
		if err := binary.Read(r, binary.LittleEndian, parents); err != nil {
			return Axis{}, fmt.Errorf("%w: parents: %v", ErrBadAxisEncoding, err)
		}
		tree, err := hierarchy.New(parents)
		if err != nil {
			return Axis{}, fmt.Errorf("%w: %v", ErrBadAxisEncoding, err)
		}
		a := Axis{Kind: Explicit, Tree: tree}
		if err := a.Validate(); err != nil {
			return Axis{}, fmt.Errorf("%w: %v", ErrBadAxisEncoding, err)
		}
		return a, nil
	default:
		return Axis{}, fmt.Errorf("%w: unknown kind %d", ErrBadAxisEncoding, kind)
	}
}
