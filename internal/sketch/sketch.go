// Package sketch implements the Count-Sketch of Charikar, Chen,
// Farach-Colton (ICALP 2002) and the dyadic-rectangle range-sum summary
// built from it — the "sketch" baseline of §6 of Cohen, Cormode, Duffield
// (VLDB 2011).
//
// For two-dimensional range sums, one sketch is kept per pair of dyadic
// levels (lx, ly): (bitsX+1)(bitsY+1) sketches in total, splitting the space
// budget evenly. Each input key updates every sketch (one dyadic ancestor
// rectangle per level pair), which is why construction costs ~log X · log Y
// per item; a range query decomposes into ≤ 2·bitsX × 2·bitsY dyadic
// rectangles, each estimated from its level-pair sketch. As the paper
// observes, the per-sketch space after dividing the budget 1000 ways is so
// small that 2-D sketch accuracy is "off the scale" for realistic budgets.
package sketch

import (
	"fmt"
	"sort"

	"structaware/internal/structure"
	"structaware/internal/xmath"
)

// CountSketch is a rows×cols Count-Sketch for estimating weights of uint64
// keys under turnstile updates.
type CountSketch struct {
	rows, cols int
	table      []float64 // rows * cols
	seeds      []uint64  // per-row hash seed
}

// NewCountSketch creates a sketch with the given shape. rows should be odd
// (median estimator); cols ≥ 1.
func NewCountSketch(rows, cols int, seed uint64) (*CountSketch, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("sketch: invalid shape %dx%d", rows, cols)
	}
	cs := &CountSketch{rows: rows, cols: cols, table: make([]float64, rows*cols), seeds: make([]uint64, rows)}
	for r := range cs.seeds {
		cs.seeds[r] = xmath.Hash64(seed + uint64(r)*0x9e3779b97f4a7c15)
	}
	return cs, nil
}

// Update adds w to key's frequency.
func (cs *CountSketch) Update(key uint64, w float64) {
	for r := 0; r < cs.rows; r++ {
		h := xmath.Hash64(key ^ cs.seeds[r])
		bucket := int(h % uint64(cs.cols))
		sign := 1.0
		if (h>>63)&1 == 1 {
			sign = -1
		}
		cs.table[r*cs.cols+bucket] += sign * w
	}
}

// Estimate returns the median-of-rows estimate of key's total weight.
func (cs *CountSketch) Estimate(key uint64) float64 {
	est := make([]float64, cs.rows)
	for r := 0; r < cs.rows; r++ {
		h := xmath.Hash64(key ^ cs.seeds[r])
		bucket := int(h % uint64(cs.cols))
		sign := 1.0
		if (h>>63)&1 == 1 {
			sign = -1
		}
		est[r] = sign * cs.table[r*cs.cols+bucket]
	}
	sort.Float64s(est)
	mid := cs.rows / 2
	if cs.rows%2 == 1 {
		return est[mid]
	}
	return (est[mid-1] + est[mid]) / 2
}

// Counters returns the total number of counters (the space in "elements").
func (cs *CountSketch) Counters() int { return cs.rows * cs.cols }

// Dyadic2D is the 2-D range-sum summary: one Count-Sketch per dyadic level
// pair.
type Dyadic2D struct {
	BitsX, BitsY int
	Rows         int
	sketches     []*CountSketch // (bitsX+1) * (bitsY+1)
}

// NewDyadic2D builds the structure with a total budget of `size` counters
// split evenly across the (bitsX+1)(bitsY+1) level pairs. rows defaults to 5
// when 0.
func NewDyadic2D(bitsX, bitsY, size, rows int, seed uint64) (*Dyadic2D, error) {
	if bitsX < 1 || bitsX > 31 || bitsY < 1 || bitsY > 31 {
		return nil, fmt.Errorf("sketch: bits (%d,%d) out of range", bitsX, bitsY)
	}
	if rows <= 0 {
		rows = 5
	}
	pairs := (bitsX + 1) * (bitsY + 1)
	cols := size / (pairs * rows)
	if cols < 1 {
		cols = 1
	}
	d := &Dyadic2D{BitsX: bitsX, BitsY: bitsY, Rows: rows, sketches: make([]*CountSketch, pairs)}
	for i := range d.sketches {
		cs, err := NewCountSketch(rows, cols, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		d.sketches[i] = cs
	}
	return d, nil
}

func (d *Dyadic2D) sketchAt(lx, ly int) *CountSketch {
	return d.sketches[lx*(d.BitsY+1)+ly]
}

// packKey packs a dyadic rectangle's translate pair into one key.
func packKey(kx, ky uint64) uint64 {
	return kx<<32 | (ky & 0xffffffff)
}

// Update adds weight w at point (x, y): one update per level pair.
func (d *Dyadic2D) Update(x, y uint64, w float64) {
	for lx := 0; lx <= d.BitsX; lx++ {
		kx := x >> uint(d.BitsX-lx)
		for ly := 0; ly <= d.BitsY; ly++ {
			ky := y >> uint(d.BitsY-ly)
			d.sketchAt(lx, ly).Update(packKey(kx, ky), w)
		}
	}
}

// EstimateRange estimates the weight inside the box by dyadic
// decomposition.
func (d *Dyadic2D) EstimateRange(r structure.Range) float64 {
	cellsX := structure.DyadicDecompose(r[0].Lo, r[0].Hi, d.BitsX)
	cellsY := structure.DyadicDecompose(r[1].Lo, r[1].Hi, d.BitsY)
	var sum float64
	for _, cx := range cellsX {
		for _, cy := range cellsY {
			sum += d.sketchAt(cx.Level, cy.Level).Estimate(packKey(cx.Index, cy.Index))
		}
	}
	return sum
}

// EstimateQuery sums EstimateRange over the disjoint boxes of q.
func (d *Dyadic2D) EstimateQuery(q structure.Query) float64 {
	var sum float64
	for _, r := range q {
		sum += d.EstimateRange(r)
	}
	return sum
}

// Size returns the total number of counters.
func (d *Dyadic2D) Size() int {
	total := 0
	for _, cs := range d.sketches {
		total += cs.Counters()
	}
	return total
}
