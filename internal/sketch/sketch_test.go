package sketch

import (
	"math"
	"testing"

	"structaware/internal/structure"
	"structaware/internal/xmath"
)

func TestCountSketchExactWhenSparse(t *testing.T) {
	// With many more counters than keys, collisions are unlikely and the
	// estimates should be near-exact.
	cs, err := NewCountSketch(5, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{10, 20, 30, 40, 50}
	ws := []float64{1, 2, 3, 4, 5}
	for i, k := range keys {
		cs.Update(k, ws[i])
	}
	for i, k := range keys {
		if got := cs.Estimate(k); math.Abs(got-ws[i]) > 1e-9 {
			t.Fatalf("key %d estimate %v want %v", k, got, ws[i])
		}
	}
	if got := cs.Estimate(999); math.Abs(got) > 1e-9 {
		t.Fatalf("absent key estimate %v want 0", got)
	}
}

func TestCountSketchUnbiasedUnderCollisions(t *testing.T) {
	// Small sketch, many keys: individual estimates are noisy but averaging
	// over independent seeds recovers the true weight.
	r := xmath.NewRand(2)
	keys := make([]uint64, 500)
	ws := make([]float64, 500)
	for i := range keys {
		keys[i] = r.Uint64()
		ws[i] = 1 + 4*r.Float64()
	}
	const trials = 400
	var acc float64
	for trial := 0; trial < trials; trial++ {
		cs, err := NewCountSketch(1, 64, uint64(trial+1)) // 1 row: pure unbiased estimator
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			cs.Update(k, ws[i])
		}
		acc += cs.Estimate(keys[0])
	}
	mean := acc / trials
	if math.Abs(mean-ws[0]) > 1.0 {
		t.Fatalf("mean estimate %v want %v", mean, ws[0])
	}
}

func TestCountSketchMedianRobustness(t *testing.T) {
	// A heavy key among noise: median-of-rows estimate should land near the
	// heavy weight.
	r := xmath.NewRand(3)
	cs, err := NewCountSketch(7, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	cs.Update(42, 10000)
	for i := 0; i < 2000; i++ {
		cs.Update(r.Uint64(), 1)
	}
	got := cs.Estimate(42)
	if math.Abs(got-10000) > 500 {
		t.Fatalf("heavy key estimate %v want ≈10000", got)
	}
}

func TestNewCountSketchErrors(t *testing.T) {
	if _, err := NewCountSketch(0, 10, 1); err == nil {
		t.Fatal("rows=0 must error")
	}
	if _, err := NewCountSketch(3, 0, 1); err == nil {
		t.Fatal("cols=0 must error")
	}
}

func TestDyadic2DWholeDomain(t *testing.T) {
	d, err := NewDyadic2D(8, 8, 100000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := xmath.NewRand(4)
	var total float64
	for i := 0; i < 300; i++ {
		w := 1 + r.Float64()
		d.Update(r.Uint64()&0xff, r.Uint64()&0xff, w)
		total += w
	}
	full := structure.Range{{Lo: 0, Hi: 255}, {Lo: 0, Hi: 255}}
	got := d.EstimateRange(full)
	// Whole domain = single level-(0,0) dyadic rect = one sketch key: exact
	// up to collisions in that sketch (unlikely with one key).
	if math.Abs(got-total) > 0.05*total {
		t.Fatalf("whole domain %v want %v", got, total)
	}
}

func TestDyadic2DAccurateWhenGenerous(t *testing.T) {
	// Generous budget: dyadic range queries should be close to exact.
	d, err := NewDyadic2D(6, 6, 5*49*1024, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := xmath.NewRand(5)
	type pt struct {
		x, y uint64
		w    float64
	}
	var pts []pt
	for i := 0; i < 200; i++ {
		p := pt{r.Uint64() & 63, r.Uint64() & 63, 1 + r.Float64()}
		pts = append(pts, p)
		d.Update(p.x, p.y, p.w)
	}
	for trial := 0; trial < 100; trial++ {
		box := structure.Range{randIv(r, 64), randIv(r, 64)}
		var exact float64
		for _, p := range pts {
			if box[0].Contains(p.x) && box[1].Contains(p.y) {
				exact += p.w
			}
		}
		// A box decomposes into up to (2·6)² dyadic rectangles whose
		// individual sketch noises add; allow that accumulation.
		got := d.EstimateRange(box)
		if math.Abs(got-exact) > 5+0.2*exact {
			t.Fatalf("box %v: got %v want %v", box, got, exact)
		}
	}
}

func randIv(r *xmath.SplitMix, n uint64) structure.Interval {
	lo := r.Uint64() % n
	hi := lo + r.Uint64()%(n-lo)
	return structure.Interval{Lo: lo, Hi: hi}
}

func TestDyadic2DBudgetSplit(t *testing.T) {
	// With a tiny budget every sketch still gets at least one counter.
	d, err := NewDyadic2D(16, 16, 100, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() < (16+1)*(16+1) {
		t.Fatalf("size %d below one counter per level pair", d.Size())
	}
	// Budget far above pairs: size ≈ budget.
	d2, err := NewDyadic2D(8, 8, 81*5*64, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != 81*5*64 {
		t.Fatalf("size %d want %d", d2.Size(), 81*5*64)
	}
}

func TestDyadic2DErrors(t *testing.T) {
	if _, err := NewDyadic2D(0, 8, 100, 5, 1); err == nil {
		t.Fatal("bits=0 must error")
	}
}

func TestDyadic2DQueryMultipleBoxes(t *testing.T) {
	d, err := NewDyadic2D(6, 6, 5*49*512, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	d.Update(5, 5, 10)
	d.Update(50, 50, 20)
	q := structure.Query{
		{{Lo: 0, Hi: 15}, {Lo: 0, Hi: 15}},
		{{Lo: 48, Hi: 63}, {Lo: 48, Hi: 63}},
	}
	got := d.EstimateQuery(q)
	if math.Abs(got-30) > 3 {
		t.Fatalf("query %v want ≈30", got)
	}
}
