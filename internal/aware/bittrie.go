package aware

import (
	"sort"

	"structaware/internal/paggr"
	"structaware/internal/xmath"
)

// BitTrie summarizes over the implicit binary hierarchy of b-bit keys (e.g.
// IPv4 prefixes): pair aggregation follows the induced trie of the present
// keys, so every prefix range receives ⌊p⌋ or ⌈p⌉ samples (∆ < 1), exactly
// as the explicit-hierarchy scheme of §3.
//
// order must list the item indices sorted ascending by coords[·]; p is
// driven to 0/1 in place. The traversal is a divide-and-conquer on bit
// positions: the sorted span is split at the first bit where keys diverge,
// children are summarized recursively, and their leftovers aggregate at the
// split — which is precisely the lowest-LCA rule on the trie.
func BitTrie(p []float64, order []int, coords []uint64, bits int, r xmath.Rand) {
	left := bitTrieSpan(p, order, coords, uint(bits), 0, r)
	paggr.ResolveLeftover(p, left, r)
}

// bitTrieSpan summarizes order[…] (sorted, all sharing their top `bits-bit`
// prefix above level `level`) and returns its leftover item, or -1.
func bitTrieSpan(p []float64, order []int, coords []uint64, bits, level uint, r xmath.Rand) int {
	if len(order) == 0 {
		return -1
	}
	if len(order) == 1 {
		i := order[0]
		p[i] = xmath.SnapProb(p[i])
		if xmath.IsSet(p[i]) {
			return -1
		}
		return i
	}
	if level >= bits {
		// Identical keys (co-located duplicates): aggregate sequentially.
		return paggr.AggregateSequence(p, order, r)
	}
	bit := uint64(1) << (bits - level - 1)
	// The span is sorted, so keys with the level-bit clear form a prefix.
	cut := sort.Search(len(order), func(k int) bool {
		return coords[order[k]]&bit != 0
	})
	if cut == 0 || cut == len(order) {
		// All keys agree on this bit: descend without splitting.
		return bitTrieSpan(p, order, coords, bits, level+1, r)
	}
	a := bitTrieSpan(p, order[:cut], coords, bits, level+1, r)
	b := bitTrieSpan(p, order[cut:], coords, bits, level+1, r)
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	out := paggr.PairAggregate(p, a, b, r)
	return out.Leftover
}
