package aware

import (
	"testing"

	"structaware/internal/paggr"
	"structaware/internal/xmath"
)

// TestOrderDiscrepancyBoundIsTight exercises Theorem 1(ii): no VarOpt
// sample distribution can guarantee interval discrepancy ∆ bounded away
// from 2. The adversarial input is the theorem's: many keys of tiny equal
// probability ε. Our summarizer guarantees ∆ < 2 on every run; the theorem
// says values close to 2 must actually occur — so over many runs the
// observed maximum should exceed 1.5 (if it never did, the algorithm would
// certify ∆ ≤ 1.5, contradicting the theorem).
func TestOrderDiscrepancyBoundIsTight(t *testing.T) {
	const (
		eps    = 1.0 / 40 // ε = 1/(4m) with m = 10
		trials = 400
	)
	n := 2000 // Σp = 50 ≥ 5m
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	r := xmath.NewRand(17)
	worst := 0.0
	for trial := 0; trial < trials; trial++ {
		p := make([]float64, n)
		for i := range p {
			p[i] = eps
		}
		p0 := append([]float64(nil), p...)
		Order(p, order, r)
		if d := intervalDiscrepancy(p0, p, order); d > worst {
			worst = d
		}
		if worst > 1.5 {
			break
		}
	}
	if worst >= 2+1e-9 {
		t.Fatalf("discrepancy %v violates the upper bound 2", worst)
	}
	if worst <= 1.5 {
		t.Fatalf("max observed discrepancy %v; Theorem 1(ii) predicts values approaching 2", worst)
	}
}

// TestHierarchyLeftoverCarrySmall verifies the mechanism behind the ∆ < 1
// hierarchy bound directly: during summarization, at most one unset item
// exists per subtree boundary, so after the run every subtree's deviation is
// attributable to a single Bernoulli leftover.
func TestHierarchyLeftoverCarrySmall(t *testing.T) {
	r := xmath.NewRand(18)
	for trial := 0; trial < 100; trial++ {
		n := 10 + r.Intn(50)
		tree, itemsAtLeaf := buildRandomTree(r, n)
		p, _ := randomIntegralProbs(r, n)
		p0 := append([]float64(nil), p...)
		Hierarchy(tree, itemsAtLeaf, p, r)
		// Deviation of every node is in (-1, 1).
		for v := int32(0); int(v) < tree.NumNodes(); v++ {
			lo, hi, ok := tree.LeafInterval(v)
			if !ok {
				continue
			}
			var dev float64
			for pos := lo; pos <= hi; pos++ {
				for _, i := range itemsAtLeaf[pos] {
					dev += p[i] - p0[i]
				}
			}
			if dev <= -1-1e-9 || dev >= 1+1e-9 {
				t.Fatalf("node %d deviation %v outside (-1,1)", v, dev)
			}
		}
		_ = paggr.SampleIndices(p)
	}
}
