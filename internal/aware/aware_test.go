package aware

import (
	"math"
	"testing"

	"structaware/internal/hierarchy"
	"structaware/internal/ipps"
	"structaware/internal/paggr"
	"structaware/internal/xmath"
)

// randomIntegralProbs returns a probability vector in (0,1)^n with integral
// sum (by construction), plus that integral target.
func randomIntegralProbs(r *xmath.SplitMix, n int) ([]float64, int) {
	for {
		p := make([]float64, n)
		for i := range p {
			p[i] = 0.02 + 0.96*r.Float64()
		}
		total := xmath.Sum(p)
		target := math.Floor(total)
		if target < 1 {
			continue
		}
		scale := target / total
		ok := true
		for i := range p {
			p[i] *= scale
			if p[i] >= 1 || p[i] <= 0 {
				ok = false
			}
		}
		if ok {
			return p, int(target)
		}
	}
}

func prefixDiscrepancy(p0, p1 []float64, order []int) float64 {
	var worst, c0, c1 float64
	for _, i := range order {
		c0 += p0[i]
		c1 += p1[i]
		if d := math.Abs(c1 - c0); d > worst {
			worst = d
		}
	}
	return worst
}

func intervalDiscrepancy(p0, p1 []float64, order []int) float64 {
	n := len(order)
	pre0 := make([]float64, n+1)
	pre1 := make([]float64, n+1)
	for k, i := range order {
		pre0[k+1] = pre0[k] + p0[i]
		pre1[k+1] = pre1[k] + p1[i]
	}
	var worst float64
	for a := 0; a < n; a++ {
		for b := a + 1; b <= n; b++ {
			d := math.Abs((pre1[b] - pre1[a]) - (pre0[b] - pre0[a]))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestOrderExactSampleSize(t *testing.T) {
	r := xmath.NewRand(1)
	for trial := 0; trial < 200; trial++ {
		n := 3 + r.Intn(60)
		p, target := randomIntegralProbs(r, n)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		Order(p, order, r)
		if got := len(paggr.SampleIndices(p)); got != target {
			t.Fatalf("trial %d: size %d want %d", trial, got, target)
		}
	}
}

func TestOrderPrefixDiscrepancyBelowOne(t *testing.T) {
	r := xmath.NewRand(2)
	for trial := 0; trial < 300; trial++ {
		n := 3 + r.Intn(60)
		p, _ := randomIntegralProbs(r, n)
		p0 := append([]float64(nil), p...)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		Order(p, order, r)
		if d := prefixDiscrepancy(p0, p, order); d >= 1+1e-9 {
			t.Fatalf("trial %d: prefix discrepancy %v >= 1", trial, d)
		}
	}
}

func TestOrderIntervalDiscrepancyBelowTwo(t *testing.T) {
	r := xmath.NewRand(3)
	for trial := 0; trial < 300; trial++ {
		n := 3 + r.Intn(50)
		p, _ := randomIntegralProbs(r, n)
		p0 := append([]float64(nil), p...)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		Order(p, order, r)
		if d := intervalDiscrepancy(p0, p, order); d >= 2+1e-9 {
			t.Fatalf("trial %d: interval discrepancy %v >= 2", trial, d)
		}
	}
}

func TestOrderPreservesInclusionProbabilities(t *testing.T) {
	p0 := []float64{0.3, 0.6, 0.4, 0.7, 0.1, 0.8, 0.4, 0.2, 0.3, 0.2}
	n := len(p0)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	r := xmath.NewRand(4)
	const trials = 60000
	counts := make([]int, n)
	for k := 0; k < trials; k++ {
		p := append([]float64(nil), p0...)
		Order(p, order, r)
		for _, i := range paggr.SampleIndices(p) {
			counts[i]++
		}
	}
	for i := range p0 {
		got := float64(counts[i]) / trials
		if math.Abs(got-p0[i]) > 0.01 {
			t.Fatalf("item %d inclusion %v want %v", i, got, p0[i])
		}
	}
}

func TestDisjointPerGroupDiscrepancyBelowOne(t *testing.T) {
	r := xmath.NewRand(5)
	for trial := 0; trial < 200; trial++ {
		n := 6 + r.Intn(60)
		p, target := randomIntegralProbs(r, n)
		p0 := append([]float64(nil), p...)
		// Random partition into up to 6 groups.
		g := 1 + r.Intn(6)
		groups := make([][]int, g)
		for i := 0; i < n; i++ {
			j := r.Intn(g)
			groups[j] = append(groups[j], i)
		}
		Disjoint(p, groups, r)
		if got := len(paggr.SampleIndices(p)); got != target {
			t.Fatalf("trial %d: size %d want %d", trial, got, target)
		}
		for gi, grp := range groups {
			var exp, got float64
			for _, i := range grp {
				exp += p0[i]
				got += p[i]
			}
			if math.Abs(got-exp) >= 1+1e-9 {
				t.Fatalf("trial %d group %d: count %v expectation %v", trial, gi, got, exp)
			}
		}
	}
}

// buildRandomTree builds a random tree with n leaves holding items 0..n-1,
// returning the tree and itemsAtLeaf.
func buildRandomTree(r *xmath.SplitMix, n int) (*hierarchy.Tree, [][]int) {
	b := hierarchy.NewBuilder()
	// Grow internal structure.
	internals := []int32{0}
	for len(internals) < 1+n/3 {
		p := internals[r.Intn(len(internals))]
		internals = append(internals, b.AddChild(p))
	}
	leaves := make([]int32, n)
	for i := 0; i < n; i++ {
		leaves[i] = b.AddChild(internals[r.Intn(len(internals))])
	}
	tree, err := b.Build()
	if err != nil {
		panic(err)
	}
	itemsAtLeaf := make([][]int, tree.NumLeaves())
	for item, l := range leaves {
		if pos, ok := tree.LeafPosition(l); ok {
			itemsAtLeaf[pos] = append(itemsAtLeaf[pos], item)
		}
	}
	// Internal nodes that ended up childless became leaves holding no items;
	// their itemsAtLeaf entries stay empty, which the summarizer must accept.
	return tree, itemsAtLeaf
}

func TestHierarchyNodeDiscrepancyAlwaysBelowOne(t *testing.T) {
	r := xmath.NewRand(6)
	for trial := 0; trial < 200; trial++ {
		n := 4 + r.Intn(50)
		tree, itemsAtLeaf := buildRandomTree(r, n)
		p, target := randomIntegralProbs(r, n)
		p0 := append([]float64(nil), p...)
		Hierarchy(tree, itemsAtLeaf, p, r)
		if got := len(paggr.SampleIndices(p)); got != target {
			t.Fatalf("trial %d: size %d want %d", trial, got, target)
		}
		// Every node's sampled count must be floor or ceil of its mass.
		for v := int32(0); int(v) < tree.NumNodes(); v++ {
			lo, hi, ok := tree.LeafInterval(v)
			if !ok {
				continue
			}
			var exp, got float64
			for pos := lo; pos <= hi; pos++ {
				for _, i := range itemsAtLeaf[pos] {
					exp += p0[i]
					got += p[i]
				}
			}
			if math.Abs(got-exp) >= 1+1e-9 {
				t.Fatalf("trial %d node %d: count %v expectation %v", trial, v, got, exp)
			}
		}
	}
}

// TestFigure1Example reproduces the paper's Figure 1: 10 leaves with weights
// 6,4,2,3,2,4,3,8,7,1 (tree order), sample size 4, τ=10. After hierarchy
// summarization every internal node holds ⌊p⌋ or ⌈p⌉ samples.
func TestFigure1Example(t *testing.T) {
	// Tree from the figure: root has three children:
	//  X (p=1.9): X1 (p=0.9: leaves w=6,w=3... ) — we reproduce the exact
	// leaf weights and expected node masses below.
	b := hierarchy.NewBuilder()
	x := b.AddChild(0)  // p = 1.9
	y := b.AddChild(0)  // p = 1.2 -> actually verify via masses
	z := b.AddChild(0)  // p = 0.9
	x1 := b.AddChild(x) // leaves 1,2
	x2 := b.AddChild(x) // leaves 3,4
	l1 := b.AddChild(x1)
	l2 := b.AddChild(x1)
	l3 := b.AddChild(x2)
	l4 := b.AddChild(x2)
	l5 := b.AddChild(y)
	y1 := b.AddChild(y)
	l6 := b.AddChild(y1)
	l7 := b.AddChild(y1)
	z1 := b.AddChild(z)
	l8 := b.AddChild(z1)
	l9 := b.AddChild(z1)
	l10 := b.AddChild(z)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	leaves := []int32{l1, l2, l3, l4, l5, l6, l7, l8, l9, l10}
	weights := []float64{3, 6, 4, 7, 1, 8, 4, 2, 3, 2}
	tau, err := ipps.Threshold(weights, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !xmath.AlmostEqual(tau, 10, 1e-9) {
		t.Fatalf("τ=%v want 10", tau)
	}
	itemsAtLeaf := make([][]int, tree.NumLeaves())
	for item, l := range leaves {
		pos, _ := tree.LeafPosition(l)
		itemsAtLeaf[pos] = append(itemsAtLeaf[pos], item)
	}
	r := xmath.NewRand(7)
	for trial := 0; trial < 500; trial++ {
		p := ipps.Probabilities(weights, tau)
		ipps.NormalizeToInteger(p, 1e-9)
		p0 := append([]float64(nil), p...)
		Hierarchy(tree, itemsAtLeaf, p, r)
		if got := len(paggr.SampleIndices(p)); got != 4 {
			t.Fatalf("sample size %d want 4", got)
		}
		for v := int32(0); int(v) < tree.NumNodes(); v++ {
			lo, hi, ok := tree.LeafInterval(v)
			if !ok {
				continue
			}
			var exp, got float64
			for pos := lo; pos <= hi; pos++ {
				for _, i := range itemsAtLeaf[pos] {
					exp += p0[i]
					got += p[i]
				}
			}
			if got < math.Floor(exp)-1e-9 || got > math.Ceil(exp)+1e-9 {
				t.Fatalf("node %d: %v samples, expectation %v", v, got, exp)
			}
		}
	}
}

func TestSystematicIntervalDiscrepancyBelowOne(t *testing.T) {
	r := xmath.NewRand(8)
	for trial := 0; trial < 300; trial++ {
		n := 3 + r.Intn(60)
		p, target := randomIntegralProbs(r, n)
		p0 := append([]float64(nil), p...)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		Systematic(p, order, r.Float64())
		if got := len(paggr.SampleIndices(p)); got != target {
			t.Fatalf("trial %d: size %d want %d", trial, got, target)
		}
		if d := intervalDiscrepancy(p0, p, order); d >= 1+1e-9 {
			t.Fatalf("trial %d: systematic interval discrepancy %v >= 1", trial, d)
		}
	}
}

func TestSystematicInclusionProbabilities(t *testing.T) {
	p0 := []float64{0.3, 0.6, 0.4, 0.7, 0.1, 0.8, 0.4, 0.2, 0.3, 0.2}
	n := len(p0)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	r := xmath.NewRand(9)
	const trials = 60000
	counts := make([]int, n)
	for k := 0; k < trials; k++ {
		p := append([]float64(nil), p0...)
		Systematic(p, order, r.Float64())
		for _, i := range paggr.SampleIndices(p) {
			counts[i]++
		}
	}
	for i := range p0 {
		got := float64(counts[i]) / trials
		if math.Abs(got-p0[i]) > 0.01 {
			t.Fatalf("item %d inclusion %v want %v", i, got, p0[i])
		}
	}
}

func TestSystematicAlphaZero(t *testing.T) {
	p := []float64{0.5, 0.5, 0.5, 0.5}
	Systematic(p, []int{0, 1, 2, 3}, 0)
	if got := len(paggr.SampleIndices(p)); got != 2 {
		t.Fatalf("alpha=0 size %d want 2", got)
	}
}

func TestHierarchyEmptyLeavesTolerated(t *testing.T) {
	b := hierarchy.NewBuilder()
	c1 := b.AddChild(0)
	b.AddChild(0) // empty leaf
	l1 := b.AddChild(c1)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	itemsAtLeaf := make([][]int, tree.NumLeaves())
	pos, _ := tree.LeafPosition(l1)
	itemsAtLeaf[pos] = []int{0}
	p := []float64{1}
	r := xmath.NewRand(10)
	Hierarchy(tree, itemsAtLeaf, p, r)
	if p[0] != 1 {
		t.Fatal("certain item must stay sampled")
	}
}
