// Package aware implements the one-dimensional structure-aware VarOpt
// summarization schemes of §3 of Cohen, Cormode, Duffield (VLDB 2011):
//
//   - Disjoint ranges: pair-aggregate within ranges first ⇒ every range
//     receives ⌊p(R)⌋ or ⌈p(R)⌉ samples (max discrepancy ∆ < 1).
//   - Hierarchy: aggregate pairs with lowest LCA ⇒ ∆ < 1 on every node of
//     the hierarchy (optimal).
//   - Order (OSSUMMARIZE, the paper's Algorithm 5): carry one active key
//     left-to-right ⇒ ∆ < 1 on prefixes, hence ∆ < 2 on all intervals
//     (Theorem 1 shows < 2 is best possible for a VarOpt sample).
//   - Systematic sampling (Appendix D): ∆ < 1 on all intervals, but only
//     satisfies VarOpt conditions (i)+(ii) — kept as an ablation because its
//     positive correlations break Chernoff bounds on arbitrary subsets.
//
// All functions operate in place on a vector p of IPPS inclusion
// probabilities and drive every entry to 0 or 1; the sample is the set of
// entries equal to 1 (extract with paggr.SampleIndices). If Σp is integral,
// the sample size is exactly Σp.
package aware

import (
	"structaware/internal/hierarchy"
	"structaware/internal/paggr"
	"structaware/internal/xmath"
)

// Order runs OSSUMMARIZE over the items listed in `order` (all item indices,
// sorted by their key coordinate). It scans left to right keeping a single
// active (unset) key and pair-aggregating it with the next unset key — this
// is exactly the paper's Algorithm 5. Any final leftover (possible only when
// Σp is non-integral) is resolved by an unbiased Bernoulli draw.
func Order(p []float64, order []int, r xmath.Rand) {
	left := paggr.AggregateSequence(p, order, r)
	paggr.ResolveLeftover(p, left, r)
}

// Disjoint summarizes a partition structure: groups lists the item indices
// of each range. Pairs within a range are aggregated first, so each range's
// sample count is ⌊p(R)⌋ or ⌈p(R)⌉; the per-range leftovers are then
// aggregated across ranges (arbitrary order, as the paper allows).
func Disjoint(p []float64, groups [][]int, r xmath.Rand) {
	leftovers := make([]int, 0, len(groups))
	for _, g := range groups {
		if left := paggr.AggregateSequence(p, g, r); left >= 0 {
			leftovers = append(leftovers, left)
		}
	}
	left := paggr.AggregateSequence(p, leftovers, r)
	paggr.ResolveLeftover(p, left, r)
}

// Hierarchy summarizes over an explicit tree following the lowest-LCA pair
// selection rule: a post-order traversal carries at most one unset item per
// subtree upward, aggregating children's leftovers at their common parent.
// itemsAtLeaf[pos] lists the item indices located at linearized leaf
// position pos (usually one item, but co-located items are allowed).
//
// The resulting sample has |S ∩ R| ∈ {⌊p(R)⌋, ⌈p(R)⌉} for the leaf set R of
// every tree node: maximum range discrepancy ∆ < 1.
func Hierarchy(t *hierarchy.Tree, itemsAtLeaf [][]int, p []float64, r xmath.Rand) {
	left := hierarchyNode(t, t.Root(), itemsAtLeaf, p, r)
	paggr.ResolveLeftover(p, left, r)
}

// hierarchyNode returns the index of the at-most-one unset item under v.
func hierarchyNode(t *hierarchy.Tree, v int32, itemsAtLeaf [][]int, p []float64, r xmath.Rand) int {
	if t.IsLeaf(v) {
		pos, ok := t.LeafPosition(v)
		if !ok || int(pos) >= len(itemsAtLeaf) {
			return -1
		}
		return paggr.AggregateSequence(p, itemsAtLeaf[pos], r)
	}
	active := -1
	for _, c := range t.Children(v) {
		cl := hierarchyNode(t, c, itemsAtLeaf, p, r)
		if cl < 0 {
			continue
		}
		if active < 0 {
			active = cl
			continue
		}
		out := paggr.PairAggregate(p, active, cl, r)
		active = out.Leftover
	}
	return active
}

// Systematic performs systematic sampling over the given key order with
// random offset alpha ∈ [0,1): item i (with cumulative probability interval
// H_i = (Σ_{j<i} p_j, Σ_{j≤i} p_j]) is selected iff H_i contains h+alpha for
// some integer h. Every interval's discrepancy is below 1 and inclusion
// probabilities are exact, but joint inclusions are positively correlated —
// it is NOT a VarOpt scheme (paper, Appendix D).
//
// p is driven to 0/1 in place.
func Systematic(p []float64, order []int, alpha float64) {
	if alpha < 0 || alpha >= 1 {
		alpha = alpha - float64(int(alpha))
		if alpha < 0 {
			alpha++
		}
	}
	var cum xmath.KahanSum
	next := alpha
	if next == 0 {
		// The selection points are h+alpha for integer h and item i is taken
		// when a point falls in (C_{i-1}, C_i]; with alpha = 0 the point 0
		// can never be matched, so the first effective point is 1.
		next = 1
	}
	for _, i := range order {
		pi := p[i]
		if pi <= 0 {
			p[i] = 0
			continue
		}
		cum.Add(pi)
		if cum.Sum() >= next {
			p[i] = 1
			for cum.Sum() >= next {
				next++
			}
		} else {
			p[i] = 0
		}
	}
}
