package aware

import (
	"math"
	"sort"
	"testing"

	"structaware/internal/paggr"
	"structaware/internal/xmath"
)

func sortedOrder(coords []uint64) []int {
	order := make([]int, len(coords))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return coords[order[a]] < coords[order[b]] })
	return order
}

func TestBitTrieExactSizeAndPrefixDiscrepancy(t *testing.T) {
	r := xmath.NewRand(1)
	const bits = 10
	for trial := 0; trial < 100; trial++ {
		n := 10 + r.Intn(200)
		coords := make([]uint64, n)
		for i := range coords {
			coords[i] = r.Uint64() & ((1 << bits) - 1)
		}
		p, target := randomIntegralProbs(r, n)
		p0 := append([]float64(nil), p...)
		order := sortedOrder(coords)
		BitTrie(p, order, coords, bits, r)
		if got := len(paggr.SampleIndices(p)); got != target {
			t.Fatalf("trial %d: size %d want %d", trial, got, target)
		}
		// Every prefix at every level: discrepancy < 1.
		for level := 1; level <= bits; level++ {
			shift := uint(bits - level)
			devs := map[uint64]float64{}
			for i := 0; i < n; i++ {
				devs[coords[i]>>shift] += p[i] - p0[i]
			}
			for pfx, d := range devs {
				if math.Abs(d) >= 1+1e-9 {
					t.Fatalf("trial %d level %d prefix %d: deviation %v", trial, level, pfx, d)
				}
			}
		}
	}
}

func TestBitTrieDuplicateCoordinates(t *testing.T) {
	// Items sharing a coordinate exercise the level >= bits fallback.
	r := xmath.NewRand(2)
	coords := []uint64{5, 5, 5, 9, 9, 12, 12, 12, 12, 3}
	for trial := 0; trial < 200; trial++ {
		p := []float64{0.4, 0.4, 0.4, 0.3, 0.3, 0.5, 0.5, 0.5, 0.5, 0.2}
		// Sum = 4.0 exactly.
		order := sortedOrder(coords)
		BitTrie(p, order, coords, 4, r)
		if got := len(paggr.SampleIndices(p)); got != 4 {
			t.Fatalf("size %d want 4", got)
		}
	}
}

func TestBitTrieInclusionProbabilities(t *testing.T) {
	r := xmath.NewRand(3)
	coords := []uint64{0, 3, 7, 8, 12, 13, 14, 15}
	p0 := []float64{0.3, 0.6, 0.4, 0.7, 0.1, 0.4, 0.3, 0.2}
	order := sortedOrder(coords)
	const trials = 60000
	counts := make([]int, len(coords))
	for k := 0; k < trials; k++ {
		p := append([]float64(nil), p0...)
		BitTrie(p, order, coords, 4, r)
		for _, i := range paggr.SampleIndices(p) {
			counts[i]++
		}
	}
	for i := range p0 {
		got := float64(counts[i]) / trials
		if math.Abs(got-p0[i]) > 0.01 {
			t.Fatalf("item %d inclusion %v want %v", i, got, p0[i])
		}
	}
}

func TestBitTrieEmptyAndSingle(t *testing.T) {
	r := xmath.NewRand(4)
	// Empty input.
	BitTrie(nil, nil, nil, 8, r)
	// Single set item.
	p := []float64{1.0}
	BitTrie(p, []int{0}, []uint64{3}, 8, r)
	if p[0] != 1 {
		t.Fatal("settled item must stay settled")
	}
	// Single fractional item resolves unbiasedly.
	hits := 0
	const trials = 20000
	for k := 0; k < trials; k++ {
		q := []float64{0.25}
		BitTrie(q, []int{0}, []uint64{3}, 8, r)
		if q[0] == 1 {
			hits++
		}
	}
	if math.Abs(float64(hits)/trials-0.25) > 0.01 {
		t.Fatalf("single-item resolve rate %v want 0.25", float64(hits)/trials)
	}
}

func TestSystematicNegativeAlphaNormalized(t *testing.T) {
	p := []float64{0.5, 0.5, 0.5, 0.5}
	Systematic(p, []int{0, 1, 2, 3}, -0.75) // normalizes to 0.25
	if got := len(paggr.SampleIndices(p)); got != 2 {
		t.Fatalf("size %d want 2", got)
	}
	p2 := []float64{0.5, 0.5, 0.5, 0.5}
	Systematic(p2, []int{0, 1, 2, 3}, 7.25) // normalizes to 0.25
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("alpha normalization must wrap consistently")
		}
	}
}

func TestSystematicSkipsZeroProbability(t *testing.T) {
	p := []float64{0, 0.5, 0, 0.5}
	Systematic(p, []int{0, 1, 2, 3}, 0.6)
	if p[0] != 0 || p[2] != 0 {
		t.Fatal("zero-probability items must stay out")
	}
	if got := len(paggr.SampleIndices(p)); got != 1 {
		t.Fatalf("size %d want 1", got)
	}
}
