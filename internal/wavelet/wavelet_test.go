package wavelet

import (
	"math"
	"testing"

	"structaware/internal/structure"
	"structaware/internal/xmath"
)

func TestBuild1DExactWithAllCoefficients(t *testing.T) {
	r := xmath.NewRand(1)
	bits := 6
	n := uint64(1) << uint(bits)
	xs := make([]uint64, 40)
	ws := make([]float64, 40)
	for i := range xs {
		xs[i] = r.Uint64() % n
		ws[i] = 1 + 10*r.Float64()
	}
	s, err := Build1D(xs, ws, bits, 1<<20) // keep everything
	if err != nil {
		t.Fatal(err)
	}
	// Every interval reconstructed exactly.
	exact := func(lo, hi uint64) float64 {
		var sum float64
		for i, x := range xs {
			if x >= lo && x <= hi {
				sum += ws[i]
			}
		}
		return sum
	}
	for trial := 0; trial < 300; trial++ {
		lo := r.Uint64() % n
		hi := lo + r.Uint64()%(n-lo)
		got := s.EstimateInterval(lo, hi)
		want := exact(lo, hi)
		if !xmath.AlmostEqual(got, want, 1e-6) {
			t.Fatalf("interval [%d,%d]: got %v want %v", lo, hi, got, want)
		}
	}
}

func TestBuild2DExactWithAllCoefficients(t *testing.T) {
	r := xmath.NewRand(2)
	bits := 4
	n := uint64(1) << uint(bits)
	var xs, ys []uint64
	var ws []float64
	for i := 0; i < 30; i++ {
		xs = append(xs, r.Uint64()%n)
		ys = append(ys, r.Uint64()%n)
		ws = append(ws, 1+5*r.Float64())
	}
	s, err := Build2D(xs, ys, ws, bits, bits, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	exact := func(rg structure.Range) float64 {
		var sum float64
		for i := range xs {
			if rg[0].Contains(xs[i]) && rg[1].Contains(ys[i]) {
				sum += ws[i]
			}
		}
		return sum
	}
	for trial := 0; trial < 200; trial++ {
		rg := structure.Range{randIv(r, n), randIv(r, n)}
		got := s.EstimateRange(rg)
		want := exact(rg)
		if !xmath.AlmostEqual(got, want, 1e-6) {
			t.Fatalf("box %v: got %v want %v", rg, got, want)
		}
		// Dyadic reconstruction must agree exactly with the fast path.
		dy := s.EstimateRangeDyadic(rg)
		if !xmath.AlmostEqual(dy, got, 1e-6) {
			t.Fatalf("dyadic %v != fast %v", dy, got)
		}
	}
}

func randIv(r *xmath.SplitMix, n uint64) structure.Interval {
	lo := r.Uint64() % n
	hi := lo + r.Uint64()%(n-lo)
	return structure.Interval{Lo: lo, Hi: hi}
}

func TestThresholdingKeepsRangeRelevant(t *testing.T) {
	// A heavy *cluster* plus background noise: retention is by range
	// relevance |c|·√(Sx·Sy), under which the cluster's coarse ancestors
	// strictly dominate any individual fine coefficient (they accumulate the
	// whole cluster coherently), so a box around the cluster is
	// reconstructed well even with few retained coefficients. (A single
	// isolated spike would instead tie across all its levels — retention of
	// any particular box ancestor is then not guaranteed.)
	r := xmath.NewRand(3)
	bits := 10
	n := uint64(1) << uint(bits)
	var xs, ys []uint64
	var ws []float64
	for i := 0; i < 100; i++ { // cluster in [64,128) × [192,256)
		xs = append(xs, 64+r.Uint64()%64)
		ys = append(ys, 192+r.Uint64()%64)
		ws = append(ws, 100)
	}
	for i := 0; i < 200; i++ {
		xs = append(xs, r.Uint64()%n)
		ys = append(ys, r.Uint64()%n)
		ws = append(ws, 1)
	}
	s, err := Build2D(xs, ys, ws, bits, bits, 60)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 60 {
		t.Fatalf("size %d want 60", s.Size())
	}
	// Quadrant containing the cluster: exact weight ≈ 10000 + ~50 noise.
	got := s.EstimateRange(structure.Range{{Lo: 0, Hi: n/2 - 1}, {Lo: 0, Hi: n/2 - 1}})
	var exact float64
	for i := range xs {
		if xs[i] < n/2 && ys[i] < n/2 {
			exact += ws[i]
		}
	}
	if math.Abs(got-exact) > 0.15*exact {
		t.Fatalf("quadrant estimate %v want ≈%v", got, exact)
	}
}

func TestBuildCounts(t *testing.T) {
	// Each point contributes (bits+1)^2 coefficients; one point should
	// materialize exactly that many.
	s, err := Build2D([]uint64{5}, []uint64{9}, []float64{2}, 8, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.BuiltCoeffs != 81 {
		t.Fatalf("built %d coefficients want 81", s.BuiltCoeffs)
	}
}

func TestQueryDisjointBoxes(t *testing.T) {
	xs := []uint64{1, 10}
	ys := []uint64{1, 10}
	ws := []float64{3, 7}
	s, err := Build2D(xs, ys, ws, 4, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	q := structure.Query{
		{{Lo: 0, Hi: 3}, {Lo: 0, Hi: 3}},
		{{Lo: 8, Hi: 15}, {Lo: 8, Hi: 15}},
	}
	if got := s.EstimateQuery(q); !xmath.AlmostEqual(got, 10, 1e-9) {
		t.Fatalf("query %v want 10", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build2D([]uint64{1}, []uint64{1}, []float64{1}, 0, 4, 10); err == nil {
		t.Fatal("bits=0 must error")
	}
	if _, err := Build2D([]uint64{1}, []uint64{1, 2}, []float64{1}, 4, 4, 10); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Build2D([]uint64{1}, []uint64{1}, []float64{1}, 4, 4, 0); err == nil {
		t.Fatal("keep=0 must error")
	}
	if _, err := Build1D([]uint64{1}, []float64{1, 2}, 4, 10); err == nil {
		t.Fatal("1D length mismatch must error")
	}
	if _, err := Build1D([]uint64{1}, []float64{1}, 40, 10); err == nil {
		t.Fatal("1D bits too large must error")
	}
}

func TestBasisOrthonormality(t *testing.T) {
	// Explicitly verify the 1-D basis is orthonormal on a small domain.
	bits := 4
	n := 1 << uint(bits)
	// Enumerate basis function ids: level 0 has k=0; level l has 2^(l-1).
	type fn struct{ l, k int }
	var fns []fn
	fns = append(fns, fn{0, 0})
	for l := 1; l <= bits; l++ {
		for k := 0; k < 1<<uint(l-1); k++ {
			fns = append(fns, fn{l, k})
		}
	}
	if len(fns) != n {
		t.Fatalf("basis count %d want %d", len(fns), n)
	}
	val := func(f fn, x uint64) float64 {
		k, v := basis1D(x, f.l, bits)
		if f.l == 0 {
			return v
		}
		if int(k) != f.k {
			return 0
		}
		return v
	}
	for a := 0; a < len(fns); a++ {
		for b := a; b < len(fns); b++ {
			var dot float64
			for x := uint64(0); x < uint64(n); x++ {
				dot += val(fns[a], x) * val(fns[b], x)
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("⟨%v,%v⟩ = %v want %v", fns[a], fns[b], dot, want)
			}
		}
	}
}
