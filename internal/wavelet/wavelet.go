// Package wavelet implements the standard (tensor-product) Haar wavelet
// summary used as the "wavelet" baseline in §6 of Cohen, Cormode, Duffield
// (VLDB 2011), after Vitter, Wang, Iyer (CIKM 1998).
//
// The 2-D transform is built sparsely: each input key contributes to
// (log X + 1)(log Y + 1) coefficients of the orthonormal tensor Haar basis,
// exactly the cost the paper measures (and the reason wavelet construction
// is orders of magnitude slower than sampling). The s largest coefficients
// by absolute value are retained (orthonormal basis ⇒ this is the optimal
// normalized thresholding).
//
// Two query procedures are provided:
//
//   - EstimateRange: O(s) scan over the retained coefficients, evaluating
//     each basis function's exact integral over the query box. This is the
//     efficient way to use the summary.
//   - EstimateRangeDyadic: the paper's implementation strategy — decompose
//     the box into dyadic rectangles and reconstruct each from its ancestor
//     coefficients. Kept for faithful reproduction of the query-time
//     experiment (Fig. 3c), where this costs ~(2 log X)(2 log Y) rectangle
//     reconstructions of (log X)(log Y) lookups each.
//
// Estimates and serialized summaries must be bit-identical across
// replicas holding the same summary (the PR 6 bug was map-iteration
// order leaking into float accumulation here), so the package is under
// the maporder analyzer's watch:
//
//sasvet:deterministic
package wavelet

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"structaware/internal/structure"
)

// CoeffID identifies a 2-D tensor Haar basis function. Level 0 on an axis is
// the scaling (constant) function; level l ≥ 1 is the wavelet of support
// 2^(bits-l+1) (so level bits has support 2).
type CoeffID struct {
	LX, LY uint8
	KX, KY uint32
}

// pack encodes a CoeffID into one uint64 (5+5+27+27 bits; valid for domains
// up to 28 bits per axis), which keeps the construction map allocation-lean.
func (id CoeffID) pack() uint64 {
	return uint64(id.LX)<<59 | uint64(id.LY)<<54 | uint64(id.KX)<<27 | uint64(id.KY)
}

// unpackCoeff inverts pack.
func unpackCoeff(k uint64) CoeffID {
	return CoeffID{
		LX: uint8(k >> 59),
		LY: uint8(k>>54) & 0x1f,
		KX: uint32(k>>27) & 0x7ffffff,
		KY: uint32(k) & 0x7ffffff,
	}
}

// Summary2D is the thresholded 2-D Haar transform.
type Summary2D struct {
	BitsX, BitsY int
	// Coeffs holds the retained coefficients, keyed by packed CoeffID.
	Coeffs map[uint64]float64
	// BuiltCoeffs reports how many distinct coefficients existed before
	// thresholding (the paper's "millions of values before thresholding").
	BuiltCoeffs int
}

// basis1D returns the value of the level-l 1-D basis function containing x,
// together with its translate index k, over a domain of the given bits.
func basis1D(x uint64, l, bits int) (k uint32, val float64) {
	n := uint64(1) << uint(bits)
	if l == 0 {
		return 0, 1 / math.Sqrt(float64(n))
	}
	s := n >> uint(l-1) // support size
	k = uint32(x / s)
	half := s >> 1
	v := 1 / math.Sqrt(float64(s))
	if x%s >= half {
		v = -v
	}
	return k, v
}

// support1D returns the support size of a level-l basis function.
func support1D(l, bits int) float64 {
	n := uint64(1) << uint(bits)
	if l == 0 {
		return float64(n)
	}
	return float64(n >> uint(l-1))
}

// rangeRelevance weighs a coefficient for retention under range-sum
// workloads: |c|·√(Sx·Sy). Pure L2 (orthonormal-magnitude) thresholding is
// optimal for pointwise reconstruction but keeps fine "spike" detail whose
// integral over any box vanishes; range queries are served by coarse
// structure, which this criterion favors (after Vitter-Wang-Iyer's use of
// wavelets for range aggregates).
func rangeRelevance(id CoeffID, v float64, bitsX, bitsY int) float64 {
	return math.Abs(v) * math.Sqrt(support1D(int(id.LX), bitsX)*support1D(int(id.LY), bitsY))
}

// integral1D returns Σ_{x∈[lo,hi]} u(x) for the level-l basis function with
// translate k.
func integral1D(lo, hi uint64, l int, k uint32, bits int) float64 {
	if lo > hi {
		return 0
	}
	n := uint64(1) << uint(bits)
	if l == 0 {
		return float64(hi-lo+1) / math.Sqrt(float64(n))
	}
	s := n >> uint(l-1)
	start := uint64(k) * s
	half := s >> 1
	ov := func(a, b uint64) float64 { // overlap of [lo,hi] with [a,b)
		x, y := max(lo, a), min(hi, b-1)
		if x > y {
			return 0
		}
		return float64(y - x + 1)
	}
	return (ov(start, start+half) - ov(start+half, start+s)) / math.Sqrt(float64(s))
}

// Build2D computes the sparse 2-D Haar transform of the weighted keys and
// retains the `keep` largest coefficients. xs, ys, ws are parallel.
func Build2D(xs, ys []uint64, ws []float64, bitsX, bitsY, keep int) (*Summary2D, error) {
	if bitsX < 1 || bitsX > 27 || bitsY < 1 || bitsY > 27 {
		return nil, fmt.Errorf("wavelet: bits (%d,%d) out of supported range [1,27]", bitsX, bitsY)
	}
	if len(xs) != len(ys) || len(xs) != len(ws) {
		return nil, fmt.Errorf("wavelet: length mismatch")
	}
	if keep <= 0 {
		return nil, fmt.Errorf("wavelet: keep must be positive")
	}
	all := accumulate2D(xs, ys, ws, bitsX, bitsY)
	s := &Summary2D{BitsX: bitsX, BitsY: bitsY, BuiltCoeffs: len(all)}
	if len(all) <= keep {
		s.Coeffs = all
		return s, nil
	}
	// Select the top-keep coefficients with a bounded min-heap rather than a
	// full sort: the unthresholded transform holds millions of entries.
	// Ties in relevance are real (every coefficient of an isolated point has
	// relevance exactly w); prefer coarser coefficients (smaller packed id =
	// lower levels), which reconstruct box queries, then settle by id for
	// determinism.
	h := newTopK(keep)
	for id, v := range all {
		h.offer(id, v, rangeRelevance(unpackCoeff(id), v, bitsX, bitsY))
	}
	s.Coeffs = h.collect()
	return s, nil
}

// topK keeps the k entries with the largest (rel, -id) retention key, as a
// min-heap over the current selection.
type topK struct {
	k   int
	ids []uint64
	vs  []float64
	rel []float64
}

func newTopK(k int) *topK {
	return &topK{k: k, ids: make([]uint64, 0, k), vs: make([]float64, 0, k), rel: make([]float64, 0, k)}
}

// less orders entry a before entry b when a is weaker (lower relevance;
// among ties, finer/larger id).
func (h *topK) less(a, b int) bool {
	if h.rel[a] != h.rel[b] {
		return h.rel[a] < h.rel[b]
	}
	return h.ids[a] > h.ids[b]
}

// weaker reports whether candidate (rel, id) is weaker than the heap root.
func (h *topK) weaker(rel float64, id uint64) bool {
	if rel != h.rel[0] {
		return rel < h.rel[0]
	}
	return id > h.ids[0]
}

func (h *topK) swap(a, b int) {
	h.ids[a], h.ids[b] = h.ids[b], h.ids[a]
	h.vs[a], h.vs[b] = h.vs[b], h.vs[a]
	h.rel[a], h.rel[b] = h.rel[b], h.rel[a]
}

func (h *topK) offer(id uint64, v, rel float64) {
	if len(h.ids) < h.k {
		h.ids = append(h.ids, id)
		h.vs = append(h.vs, v)
		h.rel = append(h.rel, rel)
		for i := len(h.ids) - 1; i > 0; {
			parent := (i - 1) / 2
			if !h.less(i, parent) {
				break
			}
			h.swap(i, parent)
			i = parent
		}
		return
	}
	if h.weaker(rel, id) {
		return
	}
	h.ids[0], h.vs[0], h.rel[0] = id, v, rel
	n := len(h.ids)
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.swap(i, small)
		i = small
	}
}

func (h *topK) collect() map[uint64]float64 {
	out := make(map[uint64]float64, len(h.ids))
	for i, id := range h.ids {
		out[id] = h.vs[i]
	}
	return out
}

// accumulate2D computes the full (unthresholded) transform. Items shard
// across CPUs into per-worker maps that are merged afterwards: each key
// touches (bitsX+1)(bitsY+1) coefficients, so this is by far the most
// expensive summary construction in the repository (the paper's Fig. 3
// observation) and the one worth parallelizing.
func accumulate2D(xs, ys []uint64, ws []float64, bitsX, bitsY int) map[uint64]float64 {
	workers := runtime.GOMAXPROCS(0)
	const minChunk = 4096
	if len(xs) < 2*minChunk || workers <= 1 {
		return accumulateRange(xs, ys, ws, bitsX, bitsY, 0, len(xs))
	}
	if workers > len(xs)/minChunk {
		workers = len(xs) / minChunk
	}
	parts := make([]map[uint64]float64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	chunk := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * chunk
			hi := lo + chunk
			if hi > len(xs) {
				hi = len(xs)
			}
			parts[w] = accumulateRange(xs, ys, ws, bitsX, bitsY, lo, hi)
		}(w)
	}
	wg.Wait()
	// Merge into the largest shard.
	big := 0
	for i := 1; i < len(parts); i++ {
		if len(parts[i]) > len(parts[big]) {
			big = i
		}
	}
	all := parts[big]
	for i, m := range parts {
		if i == big {
			continue
		}
		//sasvet:ok each key occurs once per part, so every += lands on its own cell; cross-part order is the slice order
		for k, v := range m {
			all[k] += v
		}
	}
	return all
}

func accumulateRange(xs, ys []uint64, ws []float64, bitsX, bitsY, lo, hi int) map[uint64]float64 {
	all := make(map[uint64]float64)
	for i := lo; i < hi; i++ {
		w := ws[i]
		if w == 0 {
			continue
		}
		for lx := 0; lx <= bitsX; lx++ {
			kx, ux := basis1D(xs[i], lx, bitsX)
			wux := w * ux
			for ly := 0; ly <= bitsY; ly++ {
				ky, uy := basis1D(ys[i], ly, bitsY)
				all[CoeffID{uint8(lx), uint8(ly), kx, ky}.pack()] += wux * uy
			}
		}
	}
	return all
}

// Size returns the number of retained coefficients.
func (s *Summary2D) Size() int { return len(s.Coeffs) }

// sortedKeys returns the coefficient keys in ascending order. Estimates are
// served concurrently and compared bit-for-bit across processes, so the
// float summation order must not depend on Go's randomized map iteration.
func (s *Summary2D) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(s.Coeffs))
	for key := range s.Coeffs {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// EstimateRange estimates the weight in the box via an O(Size) coefficient
// scan with exact basis integrals.
func (s *Summary2D) EstimateRange(r structure.Range) float64 {
	x1, x2 := r[0].Lo, r[0].Hi
	y1, y2 := r[1].Lo, r[1].Hi
	var sum float64
	for _, key := range s.sortedKeys() {
		c := s.Coeffs[key]
		id := unpackCoeff(key)
		ix := integral1D(x1, x2, int(id.LX), id.KX, s.BitsX)
		if ix == 0 {
			continue
		}
		iy := integral1D(y1, y2, int(id.LY), id.KY, s.BitsY)
		if iy == 0 {
			continue
		}
		sum += c * ix * iy
	}
	return sum
}

// EstimateQuery sums EstimateRange over the disjoint boxes of q.
func (s *Summary2D) EstimateQuery(q structure.Query) float64 {
	var sum float64
	for _, r := range q {
		sum += s.EstimateRange(r)
	}
	return sum
}

// EstimateRangeDyadic reproduces the paper's query procedure: the box is cut
// into dyadic rectangles (≤ 2·bitsX × 2·bitsY of them) and each rectangle's
// weight is reconstructed from its ancestor coefficients (one per level
// pair). Numerically identical to EstimateRange; asymptotically slower.
func (s *Summary2D) EstimateRangeDyadic(r structure.Range) float64 {
	cellsX := structure.DyadicDecompose(r[0].Lo, r[0].Hi, s.BitsX)
	cellsY := structure.DyadicDecompose(r[1].Lo, r[1].Hi, s.BitsY)
	var sum float64
	for _, cx := range cellsX {
		for _, cy := range cellsY {
			sum += s.dyadicRectSum(cx, cy)
		}
	}
	return sum
}

// dyadicRectSum reconstructs the total weight of a dyadic rectangle from the
// retained coefficients. Only basis functions whose support strictly
// contains the rectangle on each axis contribute (finer ones integrate to
// zero): levels 0..λ on each axis, with the translate determined by the
// rectangle's position.
func (s *Summary2D) dyadicRectSum(cx, cy structure.DyadicCell) float64 {
	ivx := cx.Interval(s.BitsX)
	ivy := cy.Interval(s.BitsY)
	var sum float64
	for lx := 0; lx <= cx.Level; lx++ {
		kx, _ := basis1D(ivx.Lo, lx, s.BitsX)
		ix := integral1D(ivx.Lo, ivx.Hi, lx, kx, s.BitsX)
		if ix == 0 {
			continue
		}
		for ly := 0; ly <= cy.Level; ly++ {
			ky, _ := basis1D(ivy.Lo, ly, s.BitsY)
			c, ok := s.Coeffs[CoeffID{uint8(lx), uint8(ly), kx, ky}.pack()]
			if !ok {
				continue
			}
			iy := integral1D(ivy.Lo, ivy.Hi, ly, ky, s.BitsY)
			sum += c * ix * iy
		}
	}
	return sum
}

// Summary1D is the thresholded 1-D Haar transform (kept for completeness
// and for testing the shared basis machinery).
type Summary1D struct {
	Bits   int
	Coeffs map[CoeffID]float64 // LY/KY unused (zero)
}

// Build1D computes the sparse 1-D Haar transform and keeps the top `keep`
// coefficients.
func Build1D(xs []uint64, ws []float64, bits, keep int) (*Summary1D, error) {
	if bits < 1 || bits > 30 {
		return nil, fmt.Errorf("wavelet: bits %d out of range", bits)
	}
	if len(xs) != len(ws) {
		return nil, fmt.Errorf("wavelet: length mismatch")
	}
	all := make(map[CoeffID]float64)
	for i, x := range xs {
		if ws[i] == 0 {
			continue
		}
		for l := 0; l <= bits; l++ {
			k, u := basis1D(x, l, bits)
			all[CoeffID{LX: uint8(l), KX: k}] += ws[i] * u
		}
	}
	s := &Summary1D{Bits: bits}
	if len(all) <= keep {
		s.Coeffs = all
		return s, nil
	}
	type kv struct {
		id  CoeffID
		v   float64
		rel float64
	}
	list := make([]kv, 0, len(all))
	for id, v := range all {
		list = append(list, kv{id, v, math.Abs(v) * math.Sqrt(support1D(int(id.LX), bits))})
	}
	sort.Slice(list, func(a, b int) bool { return list[a].rel > list[b].rel })
	s.Coeffs = make(map[CoeffID]float64, keep)
	for _, e := range list[:keep] {
		s.Coeffs[e.id] = e.v
	}
	return s, nil
}

// EstimateInterval estimates the weight in [lo, hi].
func (s *Summary1D) EstimateInterval(lo, hi uint64) float64 {
	ids := make([]CoeffID, 0, len(s.Coeffs))
	for id := range s.Coeffs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a].pack() < ids[b].pack() })
	var sum float64
	for _, id := range ids {
		sum += s.Coeffs[id] * integral1D(lo, hi, int(id.LX), id.KX, s.Bits)
	}
	return sum
}

// Size returns the number of retained coefficients.
func (s *Summary1D) Size() int { return len(s.Coeffs) }
