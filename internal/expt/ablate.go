package expt

import (
	"fmt"

	"structaware/internal/structure"
	"structaware/internal/twopass"
	"structaware/internal/workload"
	"structaware/internal/xmath"
)

// Ablation experiments for the design choices DESIGN.md calls out. They are
// registered alongside the figure runners (ids a1..a3).

func init() {
	Runners["a1"] = A1
	Runners["a2"] = A2
	Runners["a3"] = A3
	Runners["a4"] = A4
}

// A1 — two-pass oversample factor: the paper sets s′ = 5s and notes that
// "increasing the factor did not significantly improve the accuracy".
// Sweep the factor and measure.
func A1(o Options) error {
	o = o.defaults()
	ds, err := workload.Network(workload.NetworkConfig{Pairs: scaleInt(98000, o.Scale, 4000), Seed: o.Seed})
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 700)
	queries := workload.Battery(o.Queries, func() structure.Query {
		return workload.UniformAreaQuery(ds, 25, 0.25, r)
	})
	exact := workload.ExactAnswers(ds, queries)
	total := ds.TotalWeight()
	s := 2000
	if s > ds.Len()/4 {
		s = ds.Len() / 4
	}
	fmt.Fprintf(o.Out, "# a1: two-pass oversample factor ablation (s=%d, 25-range uniform-area queries)\n", s)
	fmt.Fprintln(o.Out, "# factor\terror\tguide\tcells")
	for _, factor := range []int{1, 2, 5, 10, 20} {
		var acc float64
		var guide, cells int
		const reps = 3
		for k := 0; k < reps; k++ {
			res, err := twopass.Product(ds, s, twopass.Config{Oversample: factor}, xmath.NewRand(o.Seed+uint64(31*k+factor)))
			if err != nil {
				return err
			}
			guide, cells = res.GuideSize, res.Cells
			sum := summaryFromResult(ds, res)
			acc += MeanAbsError(sum, queries, exact, total)
		}
		fmt.Fprintf(o.Out, "%d\t%.6g\t%d\t%d\n", factor, acc/reps, guide, cells)
	}
	return nil
}

// summaryFromResult adapts a twopass.Result to the Summary interface.
func summaryFromResult(ds *structure.Dataset, res *twopass.Result) Summary {
	return resultSummary{ds: ds, res: res}
}

type resultSummary struct {
	ds  *structure.Dataset
	res *twopass.Result
}

func (rs resultSummary) EstimateQuery(q structure.Query) float64 {
	var sum float64
	for _, i := range rs.res.Indices {
		for _, r := range q {
			if rs.ds.InRange(i, r) {
				sum += rs.res.AdjustedWeight(rs.ds.Weights[i])
				break
			}
		}
	}
	return sum
}

func (rs resultSummary) Size() int { return rs.res.Size() }

// A2 — sampling-method ablation: all five sampling schemes (main-memory
// aware, two-pass aware, oblivious, Poisson, systematic) on the same range
// battery. Systematic shows that a low-discrepancy non-VarOpt scheme is
// competitive on ranges; Poisson shows the price of variable sample size.
func A2(o Options) error {
	o = o.defaults()
	ds, err := workload.Network(workload.NetworkConfig{Pairs: scaleInt(98000, o.Scale, 4000), Seed: o.Seed})
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 800)
	queries := workload.Battery(o.Queries, func() structure.Query {
		return workload.UniformAreaQuery(ds, 10, 0.25, r)
	})
	exact := workload.ExactAnswers(ds, queries)
	total := ds.TotalWeight()
	methods := []string{MAwareMM, MAware, MObliv, MPoisson, MSystematic}
	fmt.Fprintln(o.Out, "# a2: sampling scheme ablation, 10-range uniform-area queries")
	fmt.Fprintf(o.Out, "# size")
	for _, m := range methods {
		fmt.Fprintf(o.Out, "\t%s", m)
	}
	fmt.Fprintln(o.Out)
	for _, size := range []int{300, 1000, 3000} {
		if size > ds.Len()/4 {
			break
		}
		fmt.Fprintf(o.Out, "%d", size)
		for _, m := range methods {
			var acc float64
			const reps = 3
			for k := 0; k < reps; k++ {
				b, err := BuildSummary(m, ds, size, o.Seed+uint64(13*k+len(m)))
				if err != nil {
					return err
				}
				acc += MeanAbsError(b.Summary, queries, exact, total)
			}
			fmt.Fprintf(o.Out, "\t%.6g", acc/reps)
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// A4 — q-digest build strategy: the faithful streaming per-item insertion
// (what the paper's cost figures measure) vs this repository's optimized
// z-order batch constructor. Same summary family; the batch build is an
// engineering improvement whose accuracy class matches.
func A4(o Options) error {
	o = o.defaults()
	ds, err := workload.Network(workload.NetworkConfig{Pairs: scaleInt(98000, o.Scale, 4000), Seed: o.Seed})
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 950)
	queries := workload.Battery(o.Queries, func() structure.Query {
		return workload.UniformAreaQuery(ds, 10, 0.25, r)
	})
	exact := workload.ExactAnswers(ds, queries)
	total := ds.TotalWeight()
	fmt.Fprintln(o.Out, "# a4: q-digest build strategy — streaming insertion (paper) vs z-order batch (optimized)")
	fmt.Fprintln(o.Out, "# size\tstream_items_per_s\tbatch_items_per_s\tstream_err\tbatch_err")
	for _, size := range []int{300, 1000, 3000} {
		bs, err := BuildSummary(MQDigest, ds, size, o.Seed)
		if err != nil {
			return err
		}
		bb, err := BuildSummary(MQDigestBatch, ds, size, o.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%d\t%.6g\t%.6g\t%.6g\t%.6g\n", size,
			float64(ds.Len())/bs.BuildTime.Seconds(),
			float64(ds.Len())/bb.BuildTime.Seconds(),
			MeanAbsError(bs.Summary, queries, exact, total),
			MeanAbsError(bb.Summary, queries, exact, total))
	}
	return nil
}

// A3 — wavelet query strategy: the O(s) coefficient scan vs the paper's
// dyadic reconstruction, demonstrating they agree numerically while
// differing hugely in cost (the basis of the Fig. 3c gap).
func A3(o Options) error {
	o = o.defaults()
	ds, err := workload.Network(workload.NetworkConfig{Pairs: scaleInt(49000, o.Scale, 4000), Seed: o.Seed})
	if err != nil {
		return err
	}
	b, err := BuildSummary(MWavelet, ds, 2700, o.Seed)
	if err != nil {
		return err
	}
	w := b.Summary.(interface {
		EstimateRange(structure.Range) float64
		EstimateRangeDyadic(structure.Range) float64
	})
	r := xmath.NewRand(o.Seed + 900)
	fmt.Fprintln(o.Out, "# a3: wavelet query strategies agree numerically (fast coefficient scan vs dyadic reconstruction)")
	fmt.Fprintln(o.Out, "# query\tfast\tdyadic\tdelta")
	worst := 0.0
	for q := 0; q < 20; q++ {
		box := workload.UniformAreaQuery(ds, 1, 0.3, r)[0]
		fast := w.EstimateRange(box)
		dy := w.EstimateRangeDyadic(box)
		d := fast - dy
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
		fmt.Fprintf(o.Out, "%d\t%.6g\t%.6g\t%.3g\n", q, fast, dy, d)
	}
	if worst > 1e-3*(1+ds.TotalWeight()) {
		return fmt.Errorf("a3: strategies disagree by %v", worst)
	}
	return nil
}
