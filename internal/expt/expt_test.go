package expt

import (
	"bytes"
	"strings"
	"testing"

	"structaware/internal/structure"
	"structaware/internal/wavelet"
	"structaware/internal/workload"
	"structaware/internal/xmath"
)

// quick options for fast test runs.
func quickOpts(buf *bytes.Buffer) Options {
	return Options{Scale: 0.015, Queries: 10, Seed: 3, Out: buf}
}

func smallNetwork(t *testing.T) *structure.Dataset {
	t.Helper()
	ds, err := workload.Network(workload.NetworkConfig{Pairs: 4000, Bits: 14, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildSummaryAllMethods(t *testing.T) {
	ds := smallNetwork(t)
	for _, m := range append(append([]string{}, CostMethods...), MAwareMM, MPoisson, MSystematic) {
		b, err := BuildSummary(m, ds, 200, 5)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if b.Summary == nil || b.Summary.Size() == 0 {
			t.Fatalf("%s: empty summary", m)
		}
		if b.BuildTime <= 0 {
			t.Fatalf("%s: no build time recorded", m)
		}
	}
	if _, err := BuildSummary("nope", ds, 100, 1); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestMeanAbsErrorSanity(t *testing.T) {
	ds := smallNetwork(t)
	r := xmath.NewRand(7)
	queries := workload.Battery(10, func() structure.Query {
		return workload.UniformAreaQuery(ds, 5, 0.3, r)
	})
	exact := workload.ExactAnswers(ds, queries)
	b, err := BuildSummary(MAware, ds, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	e := MeanAbsError(b.Summary, queries, exact, ds.TotalWeight())
	if e < 0 || e > 0.5 {
		t.Fatalf("mean abs error %v implausible", e)
	}
	// An exact "summary" has zero error.
	exactSummary := dsAsSummary{ds}
	if got := MeanAbsError(exactSummary, queries, exact, ds.TotalWeight()); got > 1e-12 {
		t.Fatalf("exact summary error %v", got)
	}
}

type dsAsSummary struct{ ds *structure.Dataset }

func (d dsAsSummary) EstimateQuery(q structure.Query) float64 { return d.ds.QuerySum(q) }
func (d dsAsSummary) Size() int                               { return d.ds.Len() }

func TestLogSizes(t *testing.T) {
	s := LogSizes(5000)
	want := []int{100, 300, 1000, 3000, 5000}
	if len(s) != len(want) {
		t.Fatalf("sizes %v want %v", s, want)
	}
	for i := range s {
		if s[i] != want[i] {
			t.Fatalf("sizes %v want %v", s, want)
		}
	}
	if got := LogSizes(50); len(got) != 1 || got[0] != 50 {
		t.Fatalf("tiny max: %v", got)
	}
}

func TestDyadicWaveletAgreesWithFast(t *testing.T) {
	ds := smallNetwork(t)
	b, err := BuildSummary(MWavelet, ds, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := xmath.NewRand(9)
	q := workload.UniformAreaQuery(ds, 3, 0.4, r)
	fast := b.Summary.EstimateQuery(q)
	dy := DyadicWavelet{W: b.Summary.(*wavelet.Summary2D)}
	if got := dy.EstimateQuery(q); !xmath.AlmostEqual(got, fast, 1e-6) {
		t.Fatalf("dyadic %v fast %v", got, fast)
	}
	if dy.Size() != b.Summary.Size() {
		t.Fatal("sizes must agree")
	}
}

func TestRunnersRegistryComplete(t *testing.T) {
	for _, name := range []string{"fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig4c", "v1", "v2", "v3", "v4", "v5"} {
		if Runners[name] == nil {
			t.Fatalf("runner %s missing", name)
		}
	}
	if len(RunnerNames()) != len(Runners) {
		t.Fatal("RunnerNames incomplete")
	}
}

func TestFigureRunnersSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure runners are slow")
	}
	for _, name := range []string{"fig2a", "fig2b", "fig2c", "fig3c", "fig4a", "fig4b", "fig4c"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Runners[name](quickOpts(&buf)); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "#") || len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
				t.Fatalf("%s produced no data:\n%s", name, out)
			}
		})
	}
}

func TestCostRunnersSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("cost runners are slow")
	}
	for _, name := range []string{"fig3a", "fig3b"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Runners[name](quickOpts(&buf)); err != nil {
				t.Fatal(err)
			}
			if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) < 3 {
				t.Fatalf("%s produced no data", name)
			}
		})
	}
}

func TestValidationRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runners are slow")
	}
	for _, name := range []string{"v1", "v2", "v3", "v4", "v5"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Runners[name](quickOpts(&buf)); err != nil {
				t.Fatalf("%s: %v\n%s", name, err, buf.String())
			}
		})
	}
}
