// Package expt is the experiment harness: it builds each summary type at a
// given size over a dataset, measures construction and query costs, and
// regenerates every figure of the paper's evaluation (§6) plus the
// validation experiments listed in DESIGN.md.
//
// Output is plain tab-separated rows with a commented header, one series
// column per method — the same series the paper plots.
package expt

import (
	"fmt"
	"time"

	"structaware/internal/core"
	"structaware/internal/qdigest"
	"structaware/internal/sketch"
	"structaware/internal/structure"
	"structaware/internal/wavelet"
	"structaware/internal/xmath"
)

// Summary is the common query interface every summary type satisfies.
type Summary interface {
	// EstimateQuery estimates the total weight of a multi-range query.
	EstimateQuery(q structure.Query) float64
	// Size is the summary footprint in elements of the original data.
	Size() int
}

// Method names, matching the paper's legend.
const (
	MAware        = "aware"    // structure-aware two-pass VarOpt (§4+§5)
	MAwareMM      = "awaremm"  // structure-aware main-memory VarOpt (§4)
	MObliv        = "obliv"    // structure-oblivious VarOpt
	MWavelet      = "wavelet"  // 2-D Haar, top-s coefficients
	MQDigest      = "qdigest"  // 2-D adaptive spatial partitioning (streaming)
	MQDigestBatch = "qdigestb" // same family, optimized z-order batch build
	MSketch       = "sketch"   // Count-Sketch over dyadic rectangles
	MPoisson      = "poisson"  // Poisson IPPS (extra baseline)
	MSystematic   = "systematic"
)

// AccuracyMethods is the method set of the accuracy figures (the paper drops
// sketch after noting its error is off the scale in 2-D).
var AccuracyMethods = []string{MAware, MObliv, MWavelet, MQDigest}

// CostMethods is the method set of the construction/query-time figures.
var CostMethods = []string{MAware, MObliv, MWavelet, MQDigest, MSketch}

// Built couples a summary with its construction cost.
type Built struct {
	Name      string
	Summary   Summary
	BuildTime time.Duration
}

// axisBits returns the dyadic bit width covering axis d of the dataset.
func axisBits(ds *structure.Dataset, d int) int {
	b := xmath.Log2Ceil(ds.Axes[d].DomainSize())
	if b < 1 {
		b = 1
	}
	return b
}

// BuildSummary constructs the named summary at the given size (elements) and
// reports how long construction took.
func BuildSummary(name string, ds *structure.Dataset, size int, seed uint64) (Built, error) {
	start := time.Now()
	var s Summary
	var err error
	switch name {
	case MAware:
		s, err = core.Build(ds, core.Config{Size: size, Method: core.AwareTwoPass, Seed: seed})
	case MAwareMM:
		s, err = core.Build(ds, core.Config{Size: size, Method: core.Aware, Seed: seed})
	case MObliv:
		s, err = core.Build(ds, core.Config{Size: size, Method: core.Oblivious, Seed: seed})
	case MPoisson:
		s, err = core.Build(ds, core.Config{Size: size, Method: core.Poisson, Seed: seed})
	case MSystematic:
		s, err = core.Build(ds, core.Config{Size: size, Method: core.Systematic, Seed: seed})
	case MWavelet:
		s, err = wavelet.Build2D(ds.Coords[0], ds.Coords[1], ds.Weights,
			axisBits(ds, 0), axisBits(ds, 1), size)
	case MQDigest:
		// The paper's qdigest is a streaming structure: per-item descents
		// through the materialized partition (this is what makes its
		// construction slow in 2-D, Fig. 3). Insert everything, then meet
		// the budget exactly.
		var sd *qdigest.Stream2D
		sd, err = qdigest.NewStream2D(axisBits(ds, 0), axisBits(ds, 1), size)
		if err == nil {
			for i := 0; i < ds.Len(); i++ {
				sd.Insert(ds.Coords[0][i], ds.Coords[1][i], ds.Weights[i])
			}
			sd.Compact(size)
			s = sd
		}
	case MQDigestBatch:
		s, err = qdigest.Build2D(ds.Coords[0], ds.Coords[1], ds.Weights,
			axisBits(ds, 0), axisBits(ds, 1), size)
	case MSketch:
		var d2 *sketch.Dyadic2D
		d2, err = sketch.NewDyadic2D(axisBits(ds, 0), axisBits(ds, 1), size, 5, seed)
		if err == nil {
			for i := 0; i < ds.Len(); i++ {
				d2.Update(ds.Coords[0][i], ds.Coords[1][i], ds.Weights[i])
			}
			s = d2
		}
	default:
		return Built{}, fmt.Errorf("expt: unknown method %q", name)
	}
	if err != nil {
		return Built{}, fmt.Errorf("expt: build %s: %w", name, err)
	}
	return Built{Name: name, Summary: s, BuildTime: time.Since(start)}, nil
}

// DyadicWavelet wraps a wavelet summary so queries go through the paper's
// dyadic-decomposition procedure (used for the query-time experiment).
type DyadicWavelet struct {
	W *wavelet.Summary2D
}

// EstimateQuery answers via dyadic reconstruction.
func (d DyadicWavelet) EstimateQuery(q structure.Query) float64 {
	var sum float64
	for _, r := range q {
		sum += d.W.EstimateRangeDyadic(r)
	}
	return sum
}

// Size returns the coefficient count.
func (d DyadicWavelet) Size() int { return d.W.Size() }

// MeanAbsError returns the mean of |estimate − exact| / totalWeight over the
// query battery — the paper's "absolute error" metric (error divided by the
// total weight of all data).
func MeanAbsError(s Summary, queries []structure.Query, exact []float64, totalWeight float64) float64 {
	if len(queries) == 0 || totalWeight <= 0 {
		return 0
	}
	var acc xmath.KahanSum
	for i, q := range queries {
		d := s.EstimateQuery(q) - exact[i]
		if d < 0 {
			d = -d
		}
		acc.Add(d / totalWeight)
	}
	return acc.Sum() / float64(len(queries))
}

// LogSizes returns the 1–3 spaced sweep [100, 300, 1000, ...] capped at max
// (always including at least the smallest size).
func LogSizes(max int) []int {
	var out []int
	for _, base := range []int{100, 300, 1000, 3000, 10000, 30000, 100000} {
		if base >= max {
			out = append(out, max)
			break
		}
		out = append(out, base)
	}
	return out
}
