package expt

import (
	"fmt"
	"io"
	"sort"
	"time"

	"structaware/internal/structure"
	"structaware/internal/wavelet"
	"structaware/internal/workload"
	"structaware/internal/xmath"
)

// Options control an experiment run.
type Options struct {
	// Scale multiplies the paper's dataset cardinalities (1.0 = paper
	// scale: 196K network pairs, 500K ticket records). Experiments stay
	// meaningful down to ~0.02 for quick runs.
	Scale float64
	// Queries is the battery size per configuration (paper: 50).
	Queries int
	// Seed drives all randomness.
	Seed uint64
	// Out receives the tab-separated rows.
	Out io.Writer
	// Workers caps the worker sweep of the parallel-engine experiment
	// (par); 0 means all available CPUs.
	Workers int
}

func (o Options) defaults() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Queries == 0 {
		o.Queries = 50
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func scaleInt(base int, scale float64, min int) int {
	v := int(float64(base) * scale)
	if v < min {
		v = min
	}
	return v
}

func (o Options) network() (*structure.Dataset, error) {
	return workload.Network(workload.NetworkConfig{
		Pairs: scaleInt(196000, o.Scale, 2000),
		Seed:  o.Seed,
	})
}

func (o Options) tickets() (*structure.Dataset, error) {
	return workload.Tickets(workload.TicketConfig{
		TroubleLeaves:  scaleInt(4800, o.Scale, 100),
		LocationLeaves: scaleInt(80000, o.Scale, 500),
		Tickets:        scaleInt(500000, o.Scale, 4000),
		Seed:           o.Seed,
	})
}

func (o Options) sizes(ds *structure.Dataset) []int {
	max := ds.Len() / 2
	if max < 100 {
		max = 100
	}
	if max > 100000 {
		max = 100000
	}
	return LogSizes(max)
}

// Runners maps experiment ids to their functions; cmd/sasbench dispatches on
// it. Every figure of the paper's evaluation appears here.
var Runners = map[string]func(Options) error{
	"fig2a": Fig2a, "fig2b": Fig2b, "fig2c": Fig2c,
	"fig3a": Fig3a, "fig3b": Fig3b, "fig3c": Fig3c,
	"fig4a": Fig4a, "fig4b": Fig4b, "fig4c": Fig4c,
	"v1": V1, "v2": V2, "v3": V3, "v4": V4, "v5": V5,
}

// RunnerNames lists the experiment ids in a stable order.
func RunnerNames() []string {
	names := make([]string, 0, len(Runners))
	for n := range Runners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// errorVsSize runs an accuracy-vs-summary-size sweep (Figs. 2a, 4a).
func errorVsSize(o Options, ds *structure.Dataset, queries []structure.Query, label string) error {
	exact := workload.ExactAnswers(ds, queries)
	total := ds.TotalWeight()
	fmt.Fprintf(o.Out, "# %s: mean absolute error (|est-exact|/W) vs summary size; n=%d keys, %d queries\n", label, ds.Len(), len(queries))
	fmt.Fprintf(o.Out, "# size")
	for _, m := range AccuracyMethods {
		fmt.Fprintf(o.Out, "\t%s", m)
	}
	fmt.Fprintln(o.Out)
	for _, size := range o.sizes(ds) {
		fmt.Fprintf(o.Out, "%d", size)
		for _, m := range AccuracyMethods {
			b, err := BuildSummary(m, ds, size, o.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(o.Out, "\t%.6g", MeanAbsError(b.Summary, queries, exact, total))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// Fig2a — Network data, uniform-area queries (25 ranges per query):
// accuracy vs summary size.
func Fig2a(o Options) error {
	o = o.defaults()
	ds, err := o.network()
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 100)
	queries := workload.Battery(o.Queries, func() structure.Query {
		return workload.UniformAreaQuery(ds, 25, 0.25, r)
	})
	return errorVsSize(o, ds, queries, "fig2a network uniform-area 25-range queries")
}

// errorVsWeight runs an accuracy-vs-query-weight sweep at a fixed summary
// size using uniform-weight queries at varying kd depths (Figs. 2b, 4c).
func errorVsWeight(o Options, ds *structure.Dataset, numRects, size int, label string) error {
	wc, err := workload.NewWeightCells(ds, 16)
	if err != nil {
		return err
	}
	total := ds.TotalWeight()
	built := make(map[string]Built)
	for _, m := range AccuracyMethods {
		b, err := BuildSummary(m, ds, size, o.Seed)
		if err != nil {
			return err
		}
		built[m] = b
	}
	fmt.Fprintf(o.Out, "# %s: error vs query weight at summary size %d (%d-range uniform-weight queries)\n", label, size, numRects)
	fmt.Fprintf(o.Out, "# weight")
	for _, m := range AccuracyMethods {
		fmt.Fprintf(o.Out, "\t%s", m)
	}
	fmt.Fprintln(o.Out)
	r := xmath.NewRand(o.Seed + 200)
	minDepth := xmath.Log2Ceil(uint64(numRects)) + 1
	for depth := wc.MaxDepth(); depth >= minDepth; depth-- {
		if len(wc.CellsAt(depth)) < numRects {
			continue
		}
		count := o.Queries / 5
		if count < 5 {
			count = 5
		}
		var queries []structure.Query
		for i := 0; i < count; i++ {
			q, err := wc.QueryAt(depth, numRects, r)
			if err != nil {
				return err
			}
			queries = append(queries, q)
		}
		exact := workload.ExactAnswers(ds, queries)
		meanW := xmath.Mean(exact) / total
		if meanW <= 0 {
			continue
		}
		fmt.Fprintf(o.Out, "%.6g", meanW)
		for _, m := range AccuracyMethods {
			fmt.Fprintf(o.Out, "\t%.6g", MeanAbsError(built[m].Summary, queries, exact, total))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// Fig2b — Network data, uniform-weight queries (10 ranges), size 2700:
// accuracy vs query weight.
func Fig2b(o Options) error {
	o = o.defaults()
	ds, err := o.network()
	if err != nil {
		return err
	}
	return errorVsWeight(o, ds, 10, 2700, "fig2b network uniform-weight")
}

// Fig2c — Network data: fixed total query weight (≈0.12 of the data),
// varying the number of ranges per query.
func Fig2c(o Options) error {
	o = o.defaults()
	ds, err := o.network()
	if err != nil {
		return err
	}
	wc, err := workload.NewWeightCells(ds, 16)
	if err != nil {
		return err
	}
	total := ds.TotalWeight()
	size := 2700
	built := make(map[string]Built)
	for _, m := range AccuracyMethods {
		b, err := BuildSummary(m, ds, size, o.Seed)
		if err != nil {
			return err
		}
		built[m] = b
	}
	fmt.Fprintf(o.Out, "# fig2c network: error vs ranges per query at fixed weight ≈0.12, size %d\n", size)
	fmt.Fprintf(o.Out, "# ranges\tweight")
	for _, m := range AccuracyMethods {
		fmt.Fprintf(o.Out, "\t%s", m)
	}
	fmt.Fprintln(o.Out)
	r := xmath.NewRand(o.Seed + 300)
	for _, ranges := range []int{1, 2, 5, 10, 20, 40, 100} {
		// weight ≈ ranges/2^depth = 0.12 → depth = log2(ranges/0.12).
		depth := xmath.Log2Ceil(uint64(float64(ranges)/0.12)) - 0
		for depth < 16 && len(wc.CellsAt(depth)) < ranges {
			depth++
		}
		if len(wc.CellsAt(depth)) < ranges {
			continue
		}
		count := o.Queries / 5
		if count < 5 {
			count = 5
		}
		var queries []structure.Query
		for i := 0; i < count; i++ {
			q, err := wc.QueryAt(depth, ranges, r)
			if err != nil {
				return err
			}
			queries = append(queries, q)
		}
		exact := workload.ExactAnswers(ds, queries)
		fmt.Fprintf(o.Out, "%d\t%.4g", ranges, xmath.Mean(exact)/total)
		for _, m := range AccuracyMethods {
			fmt.Fprintf(o.Out, "\t%.6g", MeanAbsError(built[m].Summary, queries, exact, total))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// buildThroughput runs the construction-cost sweep (Figs. 3a, 3b).
func buildThroughput(o Options, ds *structure.Dataset, label string) error {
	fmt.Fprintf(o.Out, "# %s: construction throughput (items/s) vs summary size; n=%d\n", label, ds.Len())
	fmt.Fprintf(o.Out, "# size")
	for _, m := range CostMethods {
		fmt.Fprintf(o.Out, "\t%s", m)
	}
	fmt.Fprintln(o.Out)
	for _, size := range o.sizes(ds) {
		fmt.Fprintf(o.Out, "%d", size)
		for _, m := range CostMethods {
			b, err := BuildSummary(m, ds, size, o.Seed)
			if err != nil {
				return err
			}
			secs := b.BuildTime.Seconds()
			if secs <= 0 {
				secs = 1e-9
			}
			fmt.Fprintf(o.Out, "\t%.6g", float64(ds.Len())/secs)
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// Fig3a — construction throughput on Network data.
func Fig3a(o Options) error {
	o = o.defaults()
	ds, err := o.network()
	if err != nil {
		return err
	}
	return buildThroughput(o, ds, "fig3a network")
}

// Fig3b — construction throughput on Tech Ticket data.
func Fig3b(o Options) error {
	o = o.defaults()
	ds, err := o.tickets()
	if err != nil {
		return err
	}
	return buildThroughput(o, ds, "fig3b tickets")
}

// Fig3c — time to answer a battery of single-rectangle queries vs summary
// size (the paper uses 2500 rectangles; scaled by Options.Scale).
func Fig3c(o Options) error {
	o = o.defaults()
	ds, err := o.network()
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 400)
	nRects := scaleInt(2500, o.Scale, 100)
	queries := workload.Battery(nRects, func() structure.Query {
		return workload.UniformAreaQuery(ds, 1, 0.2, r)
	})
	fmt.Fprintf(o.Out, "# fig3c network: seconds to answer %d rectangle queries vs summary size\n", nRects)
	fmt.Fprintf(o.Out, "# size")
	for _, m := range CostMethods {
		fmt.Fprintf(o.Out, "\t%s", m)
	}
	fmt.Fprintln(o.Out)
	for _, size := range o.sizes(ds) {
		fmt.Fprintf(o.Out, "%d", size)
		for _, m := range CostMethods {
			b, err := BuildSummary(m, ds, size, o.Seed)
			if err != nil {
				return err
			}
			s := b.Summary
			if m == MWavelet {
				// The paper's wavelet query path: dyadic decomposition.
				s = DyadicWavelet{W: b.Summary.(*wavelet.Summary2D)}
			}
			start := time.Now()
			var sink float64
			for _, q := range queries {
				sink += s.EstimateQuery(q)
			}
			el := time.Since(start).Seconds()
			_ = sink
			fmt.Fprintf(o.Out, "\t%.6g", el)
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// Fig4a — Tech Ticket data, uniform-weight queries: accuracy vs size.
func Fig4a(o Options) error {
	o = o.defaults()
	ds, err := o.tickets()
	if err != nil {
		return err
	}
	wc, err := workload.NewWeightCells(ds, 12)
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 500)
	depth := 7
	for depth > 1 && len(wc.CellsAt(depth)) < 10 {
		depth--
	}
	queries := make([]structure.Query, 0, o.Queries)
	for i := 0; i < o.Queries; i++ {
		q, err := wc.QueryAt(depth, 10, r)
		if err != nil {
			return err
		}
		queries = append(queries, q)
	}
	return errorVsSize(o, ds, queries, "fig4a tickets uniform-weight 10-range queries")
}

// Fig4b — Tech Ticket data, uniform-area queries (25 ranges), size 2700:
// accuracy vs query weight (bucketed).
func Fig4b(o Options) error {
	o = o.defaults()
	ds, err := o.tickets()
	if err != nil {
		return err
	}
	total := ds.TotalWeight()
	size := 2700
	built := make(map[string]Built)
	for _, m := range AccuracyMethods {
		b, err := BuildSummary(m, ds, size, o.Seed)
		if err != nil {
			return err
		}
		built[m] = b
	}
	r := xmath.NewRand(o.Seed + 600)
	queries := workload.Battery(o.Queries*2, func() structure.Query {
		return workload.UniformAreaQuery(ds, 25, 0.2, r)
	})
	exact := workload.ExactAnswers(ds, queries)
	// Bucket queries by weight decade.
	type bucket struct {
		qs []structure.Query
		ex []float64
	}
	buckets := map[int]*bucket{}
	for i, q := range queries {
		if exact[i] <= 0 {
			continue
		}
		d := decade(exact[i] / total)
		if buckets[d] == nil {
			buckets[d] = &bucket{}
		}
		buckets[d].qs = append(buckets[d].qs, q)
		buckets[d].ex = append(buckets[d].ex, exact[i])
	}
	fmt.Fprintf(o.Out, "# fig4b tickets: error vs query weight, uniform-area 25-range queries, size %d\n", size)
	fmt.Fprintf(o.Out, "# weight")
	for _, m := range AccuracyMethods {
		fmt.Fprintf(o.Out, "\t%s", m)
	}
	fmt.Fprintln(o.Out)
	var decs []int
	for d := range buckets {
		decs = append(decs, d)
	}
	sort.Ints(decs)
	for _, d := range decs {
		bk := buckets[d]
		fmt.Fprintf(o.Out, "%.6g", xmath.Mean(bk.ex)/total)
		for _, m := range AccuracyMethods {
			fmt.Fprintf(o.Out, "\t%.6g", MeanAbsError(built[m].Summary, bk.qs, bk.ex, total))
		}
		fmt.Fprintln(o.Out)
	}
	return nil
}

// decade returns floor(log10(frac)) clamped to [-6, 0].
func decade(frac float64) int {
	d := 0
	for frac < 1 && d > -6 {
		frac *= 10
		d--
	}
	return d
}

// Fig4c — Tech Ticket data, uniform-weight queries (10 ranges), size 2700:
// accuracy vs query weight.
func Fig4c(o Options) error {
	o = o.defaults()
	ds, err := o.tickets()
	if err != nil {
		return err
	}
	return errorVsWeight(o, ds, 10, 2700, "fig4c tickets uniform-weight")
}
