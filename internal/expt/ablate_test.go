package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationRunnersRegistered(t *testing.T) {
	for _, name := range []string{"a1", "a2", "a3", "a4"} {
		if Runners[name] == nil {
			t.Fatalf("runner %s missing", name)
		}
	}
}

func TestAblationRunnersSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runners are slow")
	}
	for _, name := range []string{"a1", "a2", "a3", "a4"} {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Runners[name](quickOpts(&buf)); err != nil {
				t.Fatalf("%s: %v\n%s", name, err, buf.String())
			}
			if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) < 3 {
				t.Fatalf("%s produced no data:\n%s", name, buf.String())
			}
		})
	}
}
