package expt

import (
	"testing"
)

func TestDecadeBuckets(t *testing.T) {
	cases := []struct {
		frac float64
		want int
	}{
		{1, 0}, {0.5, -1}, {0.09, -2}, {0.009, -3}, {1e-9, -6}, {0, -6},
	}
	for _, c := range cases {
		if got := decade(c.frac); got != c.want {
			t.Fatalf("decade(%v) = %d want %d", c.frac, got, c.want)
		}
	}
}

func TestMeanAbsErrorEdgeCases(t *testing.T) {
	if got := MeanAbsError(nil, nil, nil, 100); got != 0 {
		t.Fatal("empty battery must be 0")
	}
	if got := MeanAbsError(nil, nil, nil, 0); got != 0 {
		t.Fatal("zero weight must be 0")
	}
}

func TestScaleInt(t *testing.T) {
	if got := scaleInt(1000, 0.5, 100); got != 500 {
		t.Fatalf("scaleInt %d", got)
	}
	if got := scaleInt(1000, 0.01, 100); got != 100 {
		t.Fatalf("scaleInt floor %d", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.defaults()
	if o.Scale != 1 || o.Queries != 50 || o.Seed != 1 {
		t.Fatalf("defaults %+v", o)
	}
	o2 := Options{Scale: 0.25, Queries: 7, Seed: 9}.defaults()
	if o2.Scale != 0.25 || o2.Queries != 7 || o2.Seed != 9 {
		t.Fatal("explicit options must pass through")
	}
}
