package expt

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"structaware/internal/core"
	"structaware/internal/structure"
	"structaware/internal/workload"
	"structaware/internal/xmath"
)

func init() {
	Runners["par"] = Par
}

// Par measures the sharded parallel engine (core.SampleParallel over
// internal/engine) against the serial builder on the network dataset:
// build time and speedup per worker count, with the mean absolute query
// error alongside to show the parallel sample loses no accuracy.
func Par(o Options) error {
	o = o.defaults()
	ds, err := o.network()
	if err != nil {
		return err
	}
	size := ds.Len() / 16
	if size < 100 {
		size = 100
	}
	maxW := o.Workers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	r := xmath.NewRand(o.Seed)
	queries := workload.Battery(o.Queries, func() structure.Query {
		return workload.UniformAreaQuery(ds, 4, 0.25, r)
	})
	exact := workload.ExactAnswers(ds, queries)
	fmt.Fprintf(o.Out, "# parallel engine: aware build time vs workers; n=%d keys, s=%d\n", ds.Len(), size)
	fmt.Fprintf(o.Out, "# workers\tbuild_ms\tspeedup\tmean_abs_err\n")
	var serialMS float64
	for _, w := range workerSweep(maxW) {
		// Best of 3 so a one-shot GC pause or scheduler hiccup (especially
		// in the serial baseline, which anchors every speedup row) does not
		// skew the column.
		var sum *core.Summary
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			s, err := core.SampleParallel(ds, core.Config{Size: size, Method: core.Aware, Seed: o.Seed}, w)
			if err != nil {
				return err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; ms < best {
				best = ms
			}
			sum = s
		}
		ms := best
		if w == 1 {
			serialMS = ms
		}
		speedup := 0.0
		if ms > 0 {
			speedup = serialMS / ms
		}
		e := MeanAbsError(sum, queries, exact, ds.TotalWeight())
		fmt.Fprintf(o.Out, "%d\t%.2f\t%.2f\t%.5f\n", w, ms, speedup, e)
	}
	return nil
}

// workerSweep returns 1, 2, 4, ... capped at max (max itself included).
func workerSweep(max int) []int {
	ws := []int{1}
	for w := 2; w < max; w *= 2 {
		ws = append(ws, w)
	}
	if max > 1 {
		ws = append(ws, max)
	}
	return ws
}
