package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestParRunnerRegistered(t *testing.T) {
	if Runners["par"] == nil {
		t.Fatal("runner par missing")
	}
}

func TestParRunnerSmallScale(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Workers = 3
	if err := Par(o); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	lines := strings.Split(out, "\n")
	// Header ×2 plus one row per sweep entry (1, 2, 3 workers).
	if len(lines) != 5 {
		t.Fatalf("unexpected output shape:\n%s", out)
	}
	for _, want := range []string{"workers", "speedup", "1\t", "2\t", "3\t"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWorkerSweep(t *testing.T) {
	cases := map[int][]int{
		1: {1},
		2: {1, 2},
		3: {1, 2, 3},
		8: {1, 2, 4, 8},
		9: {1, 2, 4, 8, 9},
	}
	for max, want := range cases {
		got := workerSweep(max)
		if len(got) != len(want) {
			t.Fatalf("workerSweep(%d) = %v want %v", max, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workerSweep(%d) = %v want %v", max, got, want)
			}
		}
	}
}
