package expt

import (
	"fmt"
	"math"

	"structaware/internal/aware"
	"structaware/internal/bounds"
	"structaware/internal/core"
	"structaware/internal/ipps"
	"structaware/internal/paggr"
	"structaware/internal/structure"
	"structaware/internal/varopt"
	"structaware/internal/workload"
	"structaware/internal/xmath"
)

// V1 — hierarchy summarization: the maximum node discrepancy is < 1 on every
// run (the paper's §3 guarantee), versus Θ(√s)-scale worst nodes for the
// oblivious sample.
func V1(o Options) error {
	o = o.defaults()
	r := xmath.NewRand(o.Seed)
	fmt.Fprintln(o.Out, "# v1: max hierarchy-node discrepancy, aware (bound: <1) vs oblivious")
	fmt.Fprintln(o.Out, "# trial\taware\tobliv")
	worstAware := 0.0
	for trial := 0; trial < 20; trial++ {
		n := 2000
		tree, err := workload.RandomHierarchy(r, n, 8)
		if err != nil {
			return err
		}
		itemsAtLeaf := make([][]int, tree.NumLeaves())
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			itemsAtLeaf[i] = []int{i}
			weights[i] = math.Exp(4 * r.Float64())
		}
		s := 100
		tau, err := ipps.Threshold(weights, s)
		if err != nil {
			return err
		}
		p0 := ipps.Probabilities(weights, tau)
		ipps.NormalizeToInteger(p0, 1e-6)

		p := append([]float64(nil), p0...)
		aware.Hierarchy(tree, itemsAtLeaf, p, r)
		sampled := make([]bool, n)
		for _, i := range paggr.SampleIndices(p) {
			sampled[i] = true
		}
		dAware := bounds.HierarchyDiscrepancy(tree, itemsAtLeaf, p0, sampled)

		ob, err := varopt.Batch(weights, s, r)
		if err != nil {
			return err
		}
		sampledO := make([]bool, n)
		for _, i := range ob.Indices {
			sampledO[i] = true
		}
		dObliv := bounds.HierarchyDiscrepancy(tree, itemsAtLeaf, p0, sampledO)
		if dAware > worstAware {
			worstAware = dAware
		}
		fmt.Fprintf(o.Out, "%d\t%.4f\t%.4f\n", trial, dAware, dObliv)
	}
	fmt.Fprintf(o.Out, "# worst aware discrepancy over all trials: %.6f (theorem: < 1)\n", worstAware)
	if worstAware >= 1 {
		return fmt.Errorf("v1: hierarchy discrepancy %v violates the <1 bound", worstAware)
	}
	return nil
}

// V2 — order summarization: the maximum interval discrepancy is < 2
// (Theorem 1), prefixes < 1; obliv shown for contrast.
func V2(o Options) error {
	o = o.defaults()
	r := xmath.NewRand(o.Seed)
	fmt.Fprintln(o.Out, "# v2: order-structure discrepancy, aware (bounds: prefix<1, interval<2) vs oblivious")
	fmt.Fprintln(o.Out, "# trial\taware_prefix\taware_interval\tobliv_interval")
	worstPrefix, worstInterval := 0.0, 0.0
	for trial := 0; trial < 20; trial++ {
		n := 3000
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = math.Exp(4 * r.Float64())
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		s := 150
		tau, err := ipps.Threshold(weights, s)
		if err != nil {
			return err
		}
		p0 := ipps.Probabilities(weights, tau)
		ipps.NormalizeToInteger(p0, 1e-6)

		p := append([]float64(nil), p0...)
		aware.Order(p, order, r)
		sampled := make([]bool, n)
		for _, i := range paggr.SampleIndices(p) {
			sampled[i] = true
		}
		dPre := bounds.PrefixDiscrepancy1D(order, p0, sampled)
		dInt := bounds.IntervalDiscrepancy1D(order, p0, sampled)

		ob, err := varopt.Batch(weights, s, r)
		if err != nil {
			return err
		}
		sampledO := make([]bool, n)
		for _, i := range ob.Indices {
			sampledO[i] = true
		}
		dObliv := bounds.IntervalDiscrepancy1D(order, p0, sampledO)
		worstPrefix = math.Max(worstPrefix, dPre)
		worstInterval = math.Max(worstInterval, dInt)
		fmt.Fprintf(o.Out, "%d\t%.4f\t%.4f\t%.4f\n", trial, dPre, dInt, dObliv)
	}
	fmt.Fprintf(o.Out, "# worst aware: prefix %.6f (<1), interval %.6f (<2)\n", worstPrefix, worstInterval)
	if worstPrefix >= 1 || worstInterval >= 2 {
		return fmt.Errorf("v2: order discrepancy bounds violated (%v, %v)", worstPrefix, worstInterval)
	}
	return nil
}

// V3 — 2-D box discrepancy scaling: aware discrepancy grows ≈ s^{1/4}
// (2d·s^{(d-1)/d} mass in boundary cells ⇒ error ~ s^{(d-1)/2d}), oblivious
// ≈ √s on heavy boxes.
func V3(o Options) error {
	o = o.defaults()
	fmt.Fprintln(o.Out, "# v3: mean 2-D box discrepancy vs sample size (aware ~ s^0.25, obliv ~ s^0.5 on constant-fraction boxes)")
	fmt.Fprintln(o.Out, "# s\taware\tobliv")
	ds, err := workload.Network(workload.NetworkConfig{Pairs: scaleInt(60000, o.Scale, 5000), Seed: o.Seed})
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 1)
	// Boxes covering a constant fraction of the domain.
	boxes := make([]structure.Range, 40)
	for i := range boxes {
		boxes[i] = structure.Range{halfIv(r, ds.Axes[0].DomainSize()), halfIv(r, ds.Axes[1].DomainSize())}
	}
	for _, s := range []int{100, 400, 1600, 6400} {
		if s > ds.Len()/2 {
			break
		}
		tau, err := ipps.Threshold(ds.Weights, s)
		if err != nil {
			return err
		}
		p0 := ipps.Probabilities(ds.Weights, tau)
		mean := func(m core.Method) (float64, error) {
			var acc float64
			const reps = 3
			for k := 0; k < reps; k++ {
				sum, err := core.Build(ds, core.Config{Size: s, Method: m, Seed: o.Seed + uint64(100*k+int(m))})
				if err != nil {
					return 0, err
				}
				sampledSet := make(map[[2]uint64]bool, sum.Size())
				for j := 0; j < sum.Size(); j++ {
					sampledSet[[2]uint64{sum.Coords[0][j], sum.Coords[1][j]}] = true
				}
				sampled := make([]bool, ds.Len())
				for i := 0; i < ds.Len(); i++ {
					if sampledSet[[2]uint64{ds.Coords[0][i], ds.Coords[1][i]}] {
						sampled[i] = true
					}
				}
				_, meanD := bounds.BoxDiscrepancy(ds, p0, sampled, boxes)
				acc += meanD
			}
			return acc / reps, nil
		}
		aw, err := mean(core.Aware)
		if err != nil {
			return err
		}
		ob, err := mean(core.Oblivious)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%d\t%.4f\t%.4f\n", s, aw, ob)
	}
	return nil
}

func halfIv(r *xmath.SplitMix, n uint64) structure.Interval {
	w := n/4 + r.Uint64()%(n/4)
	lo := r.Uint64() % (n - w)
	return structure.Interval{Lo: lo, Hi: lo + w - 1}
}

// V4 — multi-range queries on a hierarchy (Appendix C): the aware error
// grows like √ℓ with the number of ranges ℓ and never exceeds the
// structure-oblivious √p(Q) scale.
func V4(o Options) error {
	o = o.defaults()
	fmt.Fprintln(o.Out, "# v4: multi-range query error growth with number of ranges (hierarchy, Appendix C)")
	fmt.Fprintln(o.Out, "# ranges\taware_rms\tobliv_rms\tsqrt(ranges)")
	ds, err := o.network()
	if err != nil {
		return err
	}
	wc, err := workload.NewWeightCells(ds, 14)
	if err != nil {
		return err
	}
	s := 2000
	tau, err := ipps.Threshold(ds.Weights, s)
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 2)
	for _, ranges := range []int{1, 4, 16, 64} {
		depth := xmath.Log2Ceil(uint64(ranges)) + 4
		if len(wc.CellsAt(depth)) < ranges {
			continue
		}
		var queries []structure.Query
		for i := 0; i < 10; i++ {
			q, err := wc.QueryAt(depth, ranges, r)
			if err != nil {
				return err
			}
			queries = append(queries, q)
		}
		exact := workload.ExactAnswers(ds, queries)
		rms := func(m core.Method) (float64, error) {
			var acc float64
			const reps = 3
			for k := 0; k < reps; k++ {
				sum, err := core.Build(ds, core.Config{Size: s, Method: m, Seed: o.Seed + uint64(17*k+int(m)+1)})
				if err != nil {
					return 0, err
				}
				for i, q := range queries {
					d := (sum.EstimateQuery(q) - exact[i]) / tau
					acc += d * d
				}
			}
			return math.Sqrt(acc / float64(reps*len(queries))), nil
		}
		aw, err := rms(core.Aware)
		if err != nil {
			return err
		}
		ob, err := rms(core.Oblivious)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "%d\t%.4f\t%.4f\t%.4f\n", ranges, aw, ob, math.Sqrt(float64(ranges)))
	}
	return nil
}

// V5 — the two-pass construction matches the main-memory variant: exact
// sample size (±1 for floating-point residue) and comparable box
// discrepancy, at O(s') working memory.
func V5(o Options) error {
	o = o.defaults()
	fmt.Fprintln(o.Out, "# v5: two-pass (§5) vs main-memory (§4) structure-aware sampling")
	fmt.Fprintln(o.Out, "# s\tsize_mm\tsize_2p\terr_mm\terr_2p\terr_obliv")
	ds, err := workload.Network(workload.NetworkConfig{Pairs: scaleInt(60000, o.Scale, 5000), Seed: o.Seed})
	if err != nil {
		return err
	}
	r := xmath.NewRand(o.Seed + 3)
	queries := workload.Battery(30, func() structure.Query {
		return workload.UniformAreaQuery(ds, 10, 0.3, r)
	})
	exact := workload.ExactAnswers(ds, queries)
	total := ds.TotalWeight()
	for _, s := range []int{200, 1000, 5000} {
		if s > ds.Len()/2 {
			break
		}
		res := map[core.Method]*core.Summary{}
		for _, m := range []core.Method{core.Aware, core.AwareTwoPass, core.Oblivious} {
			sum, err := core.Build(ds, core.Config{Size: s, Method: m, Seed: o.Seed + uint64(int(m)+7)})
			if err != nil {
				return err
			}
			res[m] = sum
		}
		fmt.Fprintf(o.Out, "%d\t%d\t%d\t%.6g\t%.6g\t%.6g\n", s,
			res[core.Aware].Size(), res[core.AwareTwoPass].Size(),
			MeanAbsError(res[core.Aware], queries, exact, total),
			MeanAbsError(res[core.AwareTwoPass], queries, exact, total),
			MeanAbsError(res[core.Oblivious], queries, exact, total))
	}
	return nil
}
