package expt

import (
	"fmt"
	"time"

	"structaware/internal/backend"
	"structaware/internal/structure"
	"structaware/internal/twopass"
	"structaware/internal/workload"
	"structaware/internal/xmath"
)

// The backends comparison (sasbench -backends) builds every backend kind at
// one matched element budget over the evaluation datasets and scores them
// head-to-head on the same query batteries: accuracy against exact answers
// and query throughput. The result is a JSON document recorded alongside
// the benchmark trajectory (BENCH_PR<n>.json), so the repo carries its own
// cross-backend evidence for the paper's central comparison.

// BackendStats is one backend's score on one query battery.
type BackendStats struct {
	// Kind is the backend family (sample, qdigest, wavelet, sketch).
	Kind string `json:"kind"`
	// Elements is the realized summary footprint (≤ the requested budget:
	// thresholding and compaction may retain fewer elements).
	Elements int `json:"elements"`
	// BuildMillis is the construction time for this dataset.
	BuildMillis float64 `json:"build_ms"`
	// MeanRelErr and MaxRelErr are |est−exact|/exact over the battery,
	// excluding queries whose exact answer is zero.
	MeanRelErr float64 `json:"mean_rel_err"`
	MaxRelErr  float64 `json:"max_rel_err"`
	// MeanAbsErr is the paper's accuracy metric: mean |est−exact| divided
	// by the dataset's total weight.
	MeanAbsErr float64 `json:"mean_abs_err"`
	// QueriesPerSec is single-threaded EstimateQuery throughput on this
	// battery.
	QueriesPerSec float64 `json:"queries_per_sec"`
}

// BackendBattery is one query battery's scores across all backends.
type BackendBattery struct {
	// Name identifies the battery shape (uniform-area, uniform-weight).
	Name string `json:"name"`
	// Queries is the battery size; Skipped counts queries with exact
	// answer zero, excluded from the relative-error aggregates.
	Queries  int            `json:"queries"`
	Skipped  int            `json:"skipped,omitempty"`
	Backends []BackendStats `json:"backends"`
}

// BackendDataset is one dataset's batteries.
type BackendDataset struct {
	Name        string           `json:"name"`
	Keys        int              `json:"keys"`
	TotalWeight float64          `json:"total_weight"`
	Batteries   []BackendBattery `json:"batteries"`
}

// BackendsReport is the complete head-to-head comparison document.
type BackendsReport struct {
	Size     int              `json:"size"`
	Queries  int              `json:"queries"`
	Scale    float64          `json:"scale"`
	Seed     uint64           `json:"seed"`
	Datasets []BackendDataset `json:"datasets"`
}

// minThroughputWindow is how long the throughput loop keeps replaying the
// battery; short enough to keep -backends interactive, long enough that
// µs-scale queries average over timer noise.
const minThroughputWindow = 50 * time.Millisecond

// CompareBackends runs the head-to-head comparison: every backend kind at
// the same element budget, over the network and tickets datasets, scored on
// uniform-area and uniform-weight batteries.
func CompareBackends(o Options, size int) (*BackendsReport, error) {
	o = o.defaults()
	if size <= 0 {
		size = backend.DefaultSize
	}
	rep := &BackendsReport{Size: size, Queries: o.Queries, Scale: o.Scale, Seed: o.Seed}
	for _, src := range []struct {
		name string
		gen  func() (*structure.Dataset, error)
	}{
		{"network", o.network},
		{"tickets", o.tickets},
	} {
		ds, err := src.gen()
		if err != nil {
			return nil, fmt.Errorf("expt: %s dataset: %w", src.name, err)
		}
		dr, err := compareOnDataset(o, ds, src.name, size)
		if err != nil {
			return nil, err
		}
		rep.Datasets = append(rep.Datasets, dr)
	}
	return rep, nil
}

func compareOnDataset(o Options, ds *structure.Dataset, name string, size int) (BackendDataset, error) {
	total := ds.TotalWeight()
	dr := BackendDataset{Name: name, Keys: ds.Len(), TotalWeight: total}

	// Build all four backends from the identical columnar stream at the
	// identical budget — the matched-memory premise of the comparison.
	type built struct {
		kind  backend.Kind
		be    *backend.Backend
		build time.Duration
	}
	builds := make([]built, 0, len(backend.Kinds))
	for _, kind := range backend.Kinds {
		start := time.Now()
		be, err := backend.Build(ds.Axes, &twopass.DatasetSource{DS: ds},
			backend.Config{Kind: kind, Size: size, Seed: o.Seed})
		if err != nil {
			return BackendDataset{}, fmt.Errorf("expt: build %s/%s: %w", name, kind, err)
		}
		builds = append(builds, built{kind, be, time.Since(start)})
	}

	batteries, err := backendBatteries(o, ds)
	if err != nil {
		return BackendDataset{}, err
	}
	for _, bat := range batteries {
		exact := workload.ExactAnswers(ds, bat.queries)
		bb := BackendBattery{Name: bat.name, Queries: len(bat.queries)}
		for _, e := range exact {
			if e <= 0 {
				bb.Skipped++
			}
		}
		for _, b := range builds {
			st := scoreBackend(b.be, bat.queries, exact, total)
			st.Kind = string(b.kind)
			st.Elements = b.be.Size()
			st.BuildMillis = float64(b.build.Microseconds()) / 1e3
			bb.Backends = append(bb.Backends, st)
		}
		dr.Batteries = append(dr.Batteries, bb)
	}
	return dr, nil
}

type namedBattery struct {
	name    string
	queries []structure.Query
}

// backendBatteries generates the two battery shapes of the paper's
// evaluation: uniform-area rectangles and uniform-weight kd cells.
func backendBatteries(o Options, ds *structure.Dataset) ([]namedBattery, error) {
	r := xmath.NewRand(o.Seed + 300)
	area := workload.Battery(o.Queries, func() structure.Query {
		return workload.UniformAreaQuery(ds, 10, 0.25, r)
	})
	out := []namedBattery{{"uniform-area", area}}

	const numRects = 10
	wc, err := workload.NewWeightCells(ds, 12)
	if err != nil {
		return nil, fmt.Errorf("expt: weight cells: %w", err)
	}
	// Mid-depth cells (~10/2^9 ≈ 2% of the weight per query), backing off
	// shallower when the scaled-down dataset has too few cells.
	depth := wc.MaxDepth()
	if depth > 9 {
		depth = 9
	}
	for depth > 0 && len(wc.CellsAt(depth)) < numRects {
		depth--
	}
	if depth > 0 {
		weight := make([]structure.Query, 0, o.Queries)
		for i := 0; i < o.Queries; i++ {
			q, err := wc.QueryAt(depth, numRects, r)
			if err != nil {
				return nil, err
			}
			weight = append(weight, q)
		}
		out = append(out, namedBattery{"uniform-weight", weight})
	}
	return out, nil
}

// scoreBackend answers the battery once for accuracy, then replays it for
// at least minThroughputWindow to measure single-threaded throughput.
func scoreBackend(be *backend.Backend, queries []structure.Query, exact []float64, total float64) BackendStats {
	var st BackendStats
	var relSum, absSum xmath.KahanSum
	scored := 0
	for i, q := range queries {
		est := be.EstimateQuery(q)
		d := est - exact[i]
		if d < 0 {
			d = -d
		}
		if total > 0 {
			absSum.Add(d / total)
		}
		if exact[i] <= 0 {
			continue
		}
		rel := d / exact[i]
		relSum.Add(rel)
		if rel > st.MaxRelErr {
			st.MaxRelErr = rel
		}
		scored++
	}
	if scored > 0 {
		st.MeanRelErr = relSum.Sum() / float64(scored)
	}
	if len(queries) > 0 {
		st.MeanAbsErr = absSum.Sum() / float64(len(queries))
	}

	reps, start := 0, time.Now()
	for time.Since(start) < minThroughputWindow {
		for _, q := range queries {
			be.EstimateQuery(q)
		}
		reps++
	}
	if elapsed := time.Since(start); elapsed > 0 && reps > 0 {
		st.QueriesPerSec = float64(reps*len(queries)) / elapsed.Seconds()
	}
	return st
}
