// Benchmarks: one per figure of the paper's evaluation (regenerating the
// plotted series at reduced scale; use cmd/sasbench for full-scale runs) and
// micro-benchmarks for the core primitives and per-method build/query costs.
package structaware_test

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"testing"

	"structaware"
	"structaware/internal/aware"
	"structaware/internal/expt"
	"structaware/internal/ipps"
	"structaware/internal/kd"
	"structaware/internal/paggr"
	"structaware/internal/structure"
	"structaware/internal/twopass"
	"structaware/internal/varopt"
	"structaware/internal/wavelet"
	"structaware/internal/workload"
	"structaware/internal/xmath"
)

// benchOpts is the reduced-scale profile used by the figure benchmarks.
func benchOpts() expt.Options {
	return expt.Options{Scale: 0.02, Queries: 10, Seed: 1, Out: io.Discard}
}

func runFigure(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := expt.Runners[name](benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One benchmark per figure (paper §6) ----------------------------------

func Benchmark_Fig2a_NetworkErrorVsSize(b *testing.B)     { runFigure(b, "fig2a") }
func Benchmark_Fig2b_NetworkErrorVsWeight(b *testing.B)   { runFigure(b, "fig2b") }
func Benchmark_Fig2c_NetworkErrorVsRanges(b *testing.B)   { runFigure(b, "fig2c") }
func Benchmark_Fig3a_NetworkBuildThroughput(b *testing.B) { runFigure(b, "fig3a") }
func Benchmark_Fig3b_TicketBuildThroughput(b *testing.B)  { runFigure(b, "fig3b") }
func Benchmark_Fig3c_QueryTime(b *testing.B)              { runFigure(b, "fig3c") }
func Benchmark_Fig4a_TicketErrorVsSize(b *testing.B)      { runFigure(b, "fig4a") }
func Benchmark_Fig4b_TicketUniformArea(b *testing.B)      { runFigure(b, "fig4b") }
func Benchmark_Fig4c_TicketUniformWeight(b *testing.B)    { runFigure(b, "fig4c") }

// Validation experiments (DESIGN.md).

func Benchmark_V3_DiscrepancyScaling(b *testing.B) { runFigure(b, "v3") }
func Benchmark_V5_TwoPassParity(b *testing.B)      { runFigure(b, "v5") }

// ---- Shared fixtures --------------------------------------------------------

var (
	benchOnce sync.Once
	benchDS   *structure.Dataset
	benchQs   []structure.Query
)

func fixtures(b *testing.B) (*structure.Dataset, []structure.Query) {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := workload.Network(workload.NetworkConfig{Pairs: 20000, Bits: 16, Seed: 9})
		if err != nil {
			panic(err)
		}
		benchDS = ds
		r := xmath.NewRand(10)
		benchQs = workload.Battery(100, func() structure.Query {
			return workload.UniformAreaQuery(ds, 1, 0.2, r)
		})
	})
	return benchDS, benchQs
}

// ---- Parallel engine: serial vs sharded on a 1M-key input -------------------

var (
	bigOnce sync.Once
	bigDS   *structure.Dataset
)

// bigFixture is a 2-D dataset of 2^20 distinct keys (a full 1024×1024 grid)
// with heavy-tailed weights — large enough that the sharded pipeline's
// per-worker threshold computation and closing passes dominate.
func bigFixture(b *testing.B) *structure.Dataset {
	b.Helper()
	bigOnce.Do(func() {
		const bits = 10
		const n = 1 << (2 * bits) // 1,048,576 distinct keys
		r := xmath.NewRand(77)
		pts := make([][]uint64, n)
		ws := make([]float64, n)
		flat := make([]uint64, 2*n)
		for i := 0; i < n; i++ {
			pt := flat[2*i : 2*i+2]
			pt[0], pt[1] = uint64(i)>>bits, uint64(i)&(1<<bits-1)
			pts[i] = pt
			ws[i] = math.Pow(1-r.Float64(), -0.6)
		}
		axes := []structure.Axis{structure.BitTrieAxis(bits), structure.BitTrieAxis(bits)}
		ds, err := structure.NewDataset(axes, pts, ws)
		if err != nil {
			panic(err)
		}
		bigDS = ds
	})
	return bigDS
}

func benchSample1M(b *testing.B, workers int) {
	ds := bigFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := structaware.SampleParallel(ds,
			structaware.Config{Size: 4096, Seed: uint64(i + 1)}, workers)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Size() != 4096 {
			b.Fatalf("size %d", sum.Size())
		}
	}
	b.ReportMetric(float64(ds.Len())*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkSerialSample(b *testing.B) { benchSample1M(b, 1) }

// BenchmarkBuilderPush tracks the streaming ingestion path on the same
// 1M-key input: every key goes through Builder.Push (bounded-memory
// reservoir) and the summary is finalized once per iteration.
func BenchmarkBuilderPush(b *testing.B) {
	ds := bigFixture(b)
	pt := make([]uint64, ds.Dims())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld, err := structaware.NewBuilder(ds.Axes,
			structaware.Config{Size: 4096, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < ds.Len(); j++ {
			if err := bld.Push(ds.Point(j, pt), ds.Weights[j]); err != nil {
				b.Fatal(err)
			}
		}
		sum, err := bld.Finalize()
		if err != nil {
			b.Fatal(err)
		}
		if sum.Size() != 4096 {
			b.Fatalf("size %d", sum.Size())
		}
	}
	b.ReportMetric(float64(ds.Len())*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

// BenchmarkBuilderPushBatch is the columnar counterpart of
// BenchmarkBuilderPush: the same 1M keys ingested as whole columns via
// PushBatch (no per-key point materialization), producing byte-identical
// summaries.
func BenchmarkBuilderPushBatch(b *testing.B) {
	ds := bigFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld, err := structaware.NewBuilder(ds.Axes,
			structaware.Config{Size: 4096, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := bld.PushBatch(ds.Coords, ds.Weights); err != nil {
			b.Fatal(err)
		}
		sum, err := bld.Finalize()
		if err != nil {
			b.Fatal(err)
		}
		if sum.Size() != 4096 {
			b.Fatalf("size %d", sum.Size())
		}
	}
	b.ReportMetric(float64(ds.Len())*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

// BenchmarkBuilderSnapshot measures publishing one snapshot from a Builder
// warmed with the full 1M-key input: the deep copy of the bounded reservoir
// state plus the closing pass, i.e. the per-epoch cost of sasserve's live
// snapshot rotation. The Builder is not consumed — cost depends on the
// buffer (here the default 5×4096 keys), not on stream length.
func BenchmarkBuilderSnapshot(b *testing.B) {
	ds := bigFixture(b)
	bld, err := structaware.NewBuilder(ds.Axes, structaware.Config{Size: 4096, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := bld.PushBatch(ds.Coords, ds.Weights); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := bld.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if sum.Size() != 4096 {
			b.Fatalf("size %d", sum.Size())
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "snapshots/s")
}

func BenchmarkParallelSample(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchSample1M(b, w) })
	}
}

// ---- Indexed vs linear query path (s = 10k) ---------------------------------

var (
	idxOnce  sync.Once
	idxSum   *structaware.Summary
	idxIS    *structaware.IndexedSummary
	idxBoxes []structure.Range
)

// indexedFixture draws a 10k-key summary from the 1M-key input and compiles
// its serving index, plus a battery of ~1%-area boxes (a few hundred sampled
// keys each) to query.
func indexedFixture(b *testing.B) (*structaware.Summary, *structaware.IndexedSummary, []structure.Range) {
	b.Helper()
	idxOnce.Do(func() {
		ds := bigFixture(b)
		sum, err := structaware.SampleParallel(ds, structaware.Config{Size: 10000, Seed: 42}, 0)
		if err != nil {
			panic(err)
		}
		is, err := sum.Index()
		if err != nil {
			panic(err)
		}
		idxSum, idxIS = sum, is
		r := xmath.NewRand(6)
		for i := 0; i < 256; i++ {
			box := make(structure.Range, len(ds.Axes))
			for d, a := range ds.Axes {
				dom := a.DomainSize()
				w := dom / 10 // 10% per axis => ~1% of the area
				lo := r.Uint64() % (dom - w)
				box[d] = structure.Interval{Lo: lo, Hi: lo + w - 1}
			}
			idxBoxes = append(idxBoxes, box)
		}
	})
	return idxSum, idxIS, idxBoxes
}

// BenchmarkLinearEstimateRange is the baseline: the paper's O(s) scan of
// every sampled key per query.
func BenchmarkLinearEstimateRange(b *testing.B) {
	sum, _, boxes := indexedFixture(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sum.EstimateRange(boxes[i%len(boxes)])
	}
	_ = sink
}

// BenchmarkIndexedEstimateRange answers the same queries through the
// compiled index (Summary.Index): O(log s + answer) per query, bit-for-bit
// identical results. Compare with BenchmarkLinearEstimateRange.
func BenchmarkIndexedEstimateRange(b *testing.B) {
	_, is, boxes := indexedFixture(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += is.EstimateRange(boxes[i%len(boxes)])
	}
	_ = sink
}

// ---- Micro: core primitives -------------------------------------------------

func BenchmarkPairAggregate(b *testing.B) {
	r := xmath.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		paggr.PairValues(0.3, 0.4, r)
	}
}

func BenchmarkStreamThreshold(b *testing.B) {
	r := xmath.NewRand(2)
	ws := make([]float64, 100000)
	for i := range ws {
		ws[i] = 1 + 100*r.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, _ := ipps.NewStreamThreshold(1000)
		for _, w := range ws {
			_ = st.Process(w)
		}
	}
	b.SetBytes(int64(len(ws)) * 8)
}

func BenchmarkStreamVarOpt(b *testing.B) {
	r := xmath.NewRand(3)
	ws := make([]float64, 100000)
	for i := range ws {
		ws[i] = 1 + 100*r.Float64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, _ := varopt.NewStream(1000, r)
		for j, w := range ws {
			_ = st.Process(j, w)
		}
	}
	b.SetBytes(int64(len(ws)) * 8)
}

// ---- Micro: per-method construction ----------------------------------------

func benchBuild(b *testing.B, method string, size int) {
	ds, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.BuildSummary(method, ds, size, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(ds.Len()))
}

func BenchmarkBuildAwareTwoPass(b *testing.B) { benchBuild(b, expt.MAware, 1000) }
func BenchmarkBuildAwareMainMem(b *testing.B) { benchBuild(b, expt.MAwareMM, 1000) }
func BenchmarkBuildOblivious(b *testing.B)    { benchBuild(b, expt.MObliv, 1000) }
func BenchmarkBuildWavelet(b *testing.B)      { benchBuild(b, expt.MWavelet, 1000) }
func BenchmarkBuildQDigest(b *testing.B)      { benchBuild(b, expt.MQDigest, 1000) }
func BenchmarkBuildSketch(b *testing.B)       { benchBuild(b, expt.MSketch, 1000) }

// ---- Micro: per-method query answering --------------------------------------

func benchQuery(b *testing.B, method string, dyadic bool) {
	ds, qs := fixtures(b)
	built, err := expt.BuildSummary(method, ds, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := built.Summary
	if dyadic {
		s = expt.DyadicWavelet{W: built.Summary.(*wavelet.Summary2D)}
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.EstimateQuery(qs[i%len(qs)])
	}
	_ = sink
}

func BenchmarkQuerySample(b *testing.B)        { benchQuery(b, expt.MAware, false) }
func BenchmarkQueryWaveletFast(b *testing.B)   { benchQuery(b, expt.MWavelet, false) }
func BenchmarkQueryWaveletDyadic(b *testing.B) { benchQuery(b, expt.MWavelet, true) }
func BenchmarkQueryQDigest(b *testing.B)       { benchQuery(b, expt.MQDigest, false) }
func BenchmarkQuerySketch(b *testing.B)        { benchQuery(b, expt.MSketch, false) }

// ---- Micro: structure-aware building blocks ---------------------------------

func BenchmarkKDBuild(b *testing.B) {
	ds, _ := fixtures(b)
	tau, err := ipps.Threshold(ds.Weights, 1000)
	if err != nil {
		b.Fatal(err)
	}
	p := ipps.Probabilities(ds.Weights, tau)
	items := make([]int, 0, ds.Len())
	for i, pi := range p {
		if pi > 0 && pi < 1 {
			items = append(items, i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := append([]int(nil), items...)
		if _, err := kd.Build(ds, work, p, kd.Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(items)))
}

func BenchmarkKDLocate(b *testing.B) {
	ds, _ := fixtures(b)
	p := make([]float64, ds.Len())
	for i := range p {
		p[i] = 0.1
	}
	items := make([]int, ds.Len())
	for i := range items {
		items[i] = i
	}
	tree, err := kd.Build(ds, items, p, kd.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.LocateItem(ds, i%ds.Len())
	}
}

func BenchmarkOrderSummarize(b *testing.B) {
	ds, _ := fixtures(b)
	tau, _ := ipps.Threshold(ds.Weights, 1000)
	p0 := ipps.Probabilities(ds.Weights, tau)
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	r := xmath.NewRand(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := append([]float64(nil), p0...)
		aware.Order(p, order, r)
	}
	b.SetBytes(int64(ds.Len()))
}

func BenchmarkBitTrieSummarize(b *testing.B) {
	ds, _ := fixtures(b)
	tau, _ := ipps.Threshold(ds.Weights, 1000)
	p0 := ipps.Probabilities(ds.Weights, tau)
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	coords := ds.Coords[0]
	sort.Slice(order, func(a, c int) bool { return coords[order[a]] < coords[order[c]] })
	r := xmath.NewRand(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := append([]float64(nil), p0...)
		aware.BitTrie(p, order, coords, ds.Axes[0].Bits, r)
	}
	b.SetBytes(int64(ds.Len()))
}

func BenchmarkTwoPassStreamCSVScale(b *testing.B) {
	// End-to-end out-of-core cost: the slice source stands in for the file
	// (parsing is benchmarked separately by the CSV source tests).
	ds, _ := fixtures(b)
	pts := make([][]uint64, ds.Len())
	for i := range pts {
		pts[i] = ds.Point(i, nil)
	}
	src := &twopass.SliceSource{Points: pts, Weights: ds.Weights}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := twopass.ProductStream(src, ds.Axes, 1000, twopass.Config{}, xmath.NewRand(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(ds.Len()))
}
